"""Unit tests for the multi-objective cost evaluator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CostModelError
from repro.placement import (
    CostEvaluator,
    CostModelParams,
    Layout,
    ObjectiveVector,
    load_benchmark,
    random_placement,
)
from repro.placement.cost import make_evaluator


@pytest.fixture()
def evaluator():
    layout = Layout(load_benchmark("mini64"))
    placement = random_placement(layout, seed=5)
    return CostEvaluator(placement)


class TestObjectiveVector:
    def test_dominance(self):
        a = ObjectiveVector(wirelength=1.0, delay=1.0, area=1.0)
        b = ObjectiveVector(wirelength=2.0, delay=1.0, area=1.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_as_dict_keys(self):
        vec = ObjectiveVector(wirelength=1.0, delay=2.0, area=3.0)
        assert set(vec.as_dict()) == {"wirelength", "delay", "area"}


class TestCostModelParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wire_goal_factor": 1.5, "wire_upper_factor": 1.2},
            {"delay_goal_factor": 0.0},
            {"wire_weight": -1.0},
            {"beta": 1.5},
            {"aggregation": "bogus"},
            {"timing_refresh_interval": 0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(CostModelError):
            CostModelParams(**kwargs)


class TestCostEvaluator:
    def test_cost_in_unit_interval_for_fuzzy(self, evaluator):
        assert 0.0 <= evaluator.cost() <= 1.0

    def test_memberships_in_unit_interval(self, evaluator):
        for value in evaluator.memberships().values():
            assert 0.0 <= value <= 1.0

    def test_evaluate_swap_does_not_mutate(self, evaluator):
        before = evaluator.placement.assignment_tuple()
        cost_before = evaluator.cost()
        evaluator.evaluate_swap(1, 2)
        assert evaluator.placement.assignment_tuple() == before
        assert evaluator.cost() == pytest.approx(cost_before)

    def test_commit_swap_applies_and_tracks(self, evaluator):
        predicted = evaluator.evaluate_swap(1, 2)
        actual = evaluator.commit_swap(1, 2)
        assert actual == pytest.approx(predicted, rel=1e-6)
        evaluator.verify_consistency()

    def test_swap_gain_sign_convention(self, evaluator):
        gain = evaluator.swap_gain(3, 4)
        new_cost = evaluator.evaluate_swap(3, 4)
        assert gain == pytest.approx(evaluator.cost() - new_cost)

    def test_evaluation_counter_increments(self, evaluator):
        start = evaluator.evaluations
        evaluator.evaluate_swap(0, 1)
        evaluator.commit_swap(2, 3)
        assert evaluator.evaluations == start + 2

    def test_install_solution_rebuilds_consistently(self, evaluator):
        layout = evaluator.placement.layout
        other = random_placement(layout, seed=77)
        evaluator.install_solution(other.to_array())
        evaluator.verify_consistency()
        assert evaluator.placement.equals(other)

    def test_snapshot_is_copy(self, evaluator):
        snap = evaluator.snapshot()
        snap[0] = -1
        assert evaluator.placement.cell_to_slot[0] != -1

    def test_lower_wirelength_lowers_fuzzy_cost(self, evaluator):
        # find an improving swap by sampling
        rng = np.random.default_rng(0)
        base = evaluator.cost()
        found = False
        for _ in range(200):
            a, b = (int(x) for x in rng.integers(0, evaluator.placement.num_cells, 2))
            if evaluator.evaluate_swap(a, b) < base:
                found = True
                break
        assert found, "no improving swap found in 200 samples (unexpected for a random placement)"


class TestWeightedSumMode:
    def test_weighted_sum_reference_is_one(self):
        layout = Layout(load_benchmark("mini64"))
        placement = random_placement(layout, seed=5)
        evaluator = CostEvaluator(placement, CostModelParams(aggregation="weighted_sum"))
        # at the reference solution the normalised weighted sum equals 1
        assert evaluator.cost() == pytest.approx(1.0)

    def test_modes_agree_on_ordering(self):
        layout = Layout(load_benchmark("mini64"))
        fuzzy_eval = CostEvaluator(random_placement(layout, seed=5), CostModelParams())
        ws_eval = CostEvaluator(
            random_placement(layout, seed=5), CostModelParams(aggregation="weighted_sum")
        )
        # apply the same clearly-improving swap to both and compare direction
        rng = np.random.default_rng(1)
        for _ in range(200):
            a, b = (int(x) for x in rng.integers(0, fuzzy_eval.placement.num_cells, 2))
            d_fuzzy = fuzzy_eval.evaluate_swap(a, b) - fuzzy_eval.cost()
            d_ws = ws_eval.evaluate_swap(a, b) - ws_eval.cost()
            if abs(d_ws) > 1e-6:
                assert np.sign(d_fuzzy) == np.sign(d_ws) or d_fuzzy == 0.0
                break


class TestSharedReference:
    def test_shared_reference_makes_costs_comparable(self):
        layout = Layout(load_benchmark("mini64"))
        a = random_placement(layout, seed=1)
        b = random_placement(layout, seed=2)
        ref_eval = CostEvaluator(a.copy())
        reference = ref_eval.objectives()
        eval_a = CostEvaluator(a, reference=reference)
        eval_b = CostEvaluator(b, reference=reference)
        # both use the same fuzzy goals
        assert eval_a.aggregator.goals == eval_b.aggregator.goals

    def test_make_evaluator_helper(self):
        layout = Layout(load_benchmark("tiny16"))
        array = random_placement(layout, seed=3).to_array()
        evaluator = make_evaluator(layout, array)
        assert evaluator.placement.num_cells == layout.netlist.num_cells
