"""Unit tests for the named (ISCAS-89-like) benchmark circuits."""

from __future__ import annotations

import pytest

from repro.errors import NetlistError
from repro.placement.iscas import (
    BENCHMARK_SPECS,
    PAPER_CIRCUITS,
    benchmark_names,
    load_benchmark,
    paper_benchmarks,
)

#: Cell counts quoted in Section 5 of the paper.
PAPER_SIZES = {"highway": 56, "c532": 395, "c1355": 1451, "c3540": 2243}


class TestBenchmarkRegistry:
    def test_paper_circuits_present(self):
        for name in PAPER_CIRCUITS:
            assert name in BENCHMARK_SPECS
            assert name in benchmark_names()

    def test_paper_sizes_match_section5(self):
        for name, cells in PAPER_SIZES.items():
            assert BENCHMARK_SPECS[name].num_cells == cells

    def test_unknown_circuit_raises(self):
        with pytest.raises(NetlistError, match="unknown benchmark"):
            load_benchmark("c9999")


class TestBenchmarkLoading:
    @pytest.mark.parametrize("name", ["highway", "c532"])
    def test_loaded_size_matches(self, name):
        netlist = load_benchmark(name)
        assert netlist.num_cells == PAPER_SIZES[name]
        assert netlist.name == name

    def test_cache_returns_same_object(self):
        a = load_benchmark("highway")
        b = load_benchmark("highway")
        assert a is b

    def test_cache_bypass_regenerates_identically(self):
        cached = load_benchmark("highway")
        fresh = load_benchmark("highway", use_cache=False)
        assert fresh is not cached
        assert fresh.num_nets == cached.num_nets
        assert [n.members for n in fresh.nets] == [n.members for n in cached.nets]

    def test_paper_benchmarks_returns_all_four(self):
        circuits = paper_benchmarks()
        assert set(circuits) == set(PAPER_CIRCUITS)
        assert all(circuits[name].num_cells == PAPER_SIZES[name] for name in circuits)
