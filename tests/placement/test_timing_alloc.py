"""Allocation-regression and large-instance parity tests for the STA kernel.

``TimingAnalyzer.analyze`` runs once per accepted move, so at the 10k-cell
scale its per-call allocations dominate the commit cost if it keeps
materialising fresh edge/level arrays.  The analyzer reuses a scratch pack
after the first call; these tests pin that behaviour (tracemalloc bar) and
re-check the vectorised propagation against the scalar reference oracle on
the large tier.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.placement import Layout, load_benchmark, random_placement
from repro.placement.timing import TimingAnalyzer

#: Steady-state allocation allowance per analyze() call.  The result's
#: arrival array (num_cells float64) is returned to the caller and must be
#: a fresh copy (~80 KB at 10k cells); the bar leaves room for it plus
#: interpreter noise, but not for re-materialising the per-edge pipeline
#: (~1 MB at big10k).
STEADY_STATE_BUDGET_BYTES = 512 * 1024


@pytest.fixture(scope="module")
def big2k_placement():
    layout = Layout(load_benchmark("big2k"))
    return random_placement(layout, seed=3)


@pytest.fixture(scope="module")
def big10k_placement():
    layout = Layout(load_benchmark("big10k"))
    return random_placement(layout, seed=3)


class TestSteadyStateAllocations:
    @pytest.mark.parametrize("circuit_fixture", ["big2k_placement", "big10k_placement"])
    def test_analyze_reuses_scratch(self, circuit_fixture, request):
        placement = request.getfixturevalue(circuit_fixture)
        analyzer = TimingAnalyzer(placement.netlist)
        assert not analyzer._use_scalar_propagation  # big tier is vectorised
        analyzer.analyze(placement)  # first call builds the scratch pack
        tracemalloc.start()
        analyzer.analyze(placement)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < STEADY_STATE_BUDGET_BYTES, f"analyze() allocated {peak} bytes"

    def test_returned_arrival_survives_next_analyze(self, big2k_placement):
        analyzer = TimingAnalyzer(big2k_placement.netlist)
        first = analyzer.analyze(big2k_placement)
        kept = first.arrival.copy()
        analyzer.analyze(big2k_placement)  # would clobber an aliased scratch
        assert np.array_equal(first.arrival, kept)


class TestLargeTierParity:
    @pytest.mark.parametrize("circuit_fixture", ["big2k_placement", "big10k_placement"])
    def test_analyze_matches_reference(self, circuit_fixture, request):
        placement = request.getfixturevalue(circuit_fixture)
        analyzer = TimingAnalyzer(placement.netlist)
        fast = analyzer.analyze(placement)
        slow = analyzer.analyze_reference(placement)
        assert fast.critical_delay == slow.critical_delay
        assert np.array_equal(fast.arrival, slow.arrival)
        assert fast.critical_path == slow.critical_path
