"""Unit tests for cells, nets and cell kinds."""

from __future__ import annotations

import pytest

from repro.placement.cell import Cell, CellKind, Net


class TestCellKind:
    def test_timing_start_points(self):
        assert CellKind.PRIMARY_INPUT.is_timing_start
        assert CellKind.SEQUENTIAL.is_timing_start
        assert not CellKind.COMBINATIONAL.is_timing_start
        assert not CellKind.PRIMARY_OUTPUT.is_timing_start

    def test_timing_end_points(self):
        assert CellKind.PRIMARY_OUTPUT.is_timing_end
        assert CellKind.SEQUENTIAL.is_timing_end
        assert not CellKind.COMBINATIONAL.is_timing_end
        assert not CellKind.PRIMARY_INPUT.is_timing_end

    def test_pads(self):
        assert CellKind.PRIMARY_INPUT.is_pad
        assert CellKind.PRIMARY_OUTPUT.is_pad
        assert not CellKind.SEQUENTIAL.is_pad


class TestCell:
    def test_valid_cell(self):
        cell = Cell(name="g1", index=3, width=2.0, delay=1.5)
        assert cell.name == "g1"
        assert cell.index == 3
        assert cell.kind is CellKind.COMBINATIONAL
        assert cell.is_movable

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError, match="width"):
            Cell(name="g1", index=0, width=0.0)

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError, match="delay"):
            Cell(name="g1", index=0, delay=-1.0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError, match="index"):
            Cell(name="g1", index=-1)

    def test_cells_are_frozen(self):
        cell = Cell(name="g1", index=0)
        with pytest.raises(AttributeError):
            cell.width = 5.0  # type: ignore[misc]


class TestNet:
    def test_members_and_degree(self):
        net = Net(name="n1", index=0, driver=2, sinks=(5, 7))
        assert net.members == (2, 5, 7)
        assert net.degree == 3

    def test_rejects_empty_sinks(self):
        with pytest.raises(ValueError, match="at least one sink"):
            Net(name="n1", index=0, driver=0, sinks=())

    def test_rejects_driver_in_sinks(self):
        with pytest.raises(ValueError, match="also listed as sink"):
            Net(name="n1", index=0, driver=1, sinks=(1, 2))

    def test_rejects_duplicate_sinks(self):
        with pytest.raises(ValueError, match="duplicate sinks"):
            Net(name="n1", index=0, driver=0, sinks=(2, 2))

    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError, match="weight"):
            Net(name="n1", index=0, driver=0, sinks=(1,), weight=0.0)
