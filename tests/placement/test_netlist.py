"""Unit tests for the netlist container and builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.placement import CellKind, NetlistBuilder
from repro.placement.cell import Cell, Net
from repro.placement.netlist import Netlist


def build_small():
    builder = NetlistBuilder("small")
    builder.add_cell("a", kind=CellKind.PRIMARY_INPUT, delay=0.0)
    builder.add_cell("b", kind=CellKind.PRIMARY_INPUT, delay=0.0)
    builder.add_cell("g1", width=2.0, delay=1.0)
    builder.add_cell("g2", width=3.0, delay=2.0)
    builder.add_cell("z", kind=CellKind.PRIMARY_OUTPUT, delay=0.0)
    builder.add_net("n1", driver="a", sinks=["g1", "g2"])
    builder.add_net("n2", driver="b", sinks=["g1"])
    builder.add_net("n3", driver="g1", sinks=["g2"])
    builder.add_net("n4", driver="g2", sinks=["z"], weight=2.0)
    return builder.build()


class TestNetlistBuilder:
    def test_build_round_trip(self):
        netlist = build_small()
        assert netlist.num_cells == 5
        assert netlist.num_nets == 4
        assert netlist.num_pins == 4 + 2 + 2 + 2 - 1  # degrees: 3+2+2+2

    def test_duplicate_cell_rejected(self):
        builder = NetlistBuilder("dup")
        builder.add_cell("a")
        with pytest.raises(NetlistError, match="duplicate cell"):
            builder.add_cell("a")

    def test_duplicate_net_rejected(self):
        builder = NetlistBuilder("dup")
        builder.add_cell("a")
        builder.add_cell("b")
        builder.add_net("n", driver="a", sinks=["b"])
        with pytest.raises(NetlistError, match="duplicate net"):
            builder.add_net("n", driver="b", sinks=["a"])

    def test_unknown_driver_rejected(self):
        builder = NetlistBuilder("bad")
        builder.add_cell("a")
        with pytest.raises(NetlistError, match="driver"):
            builder.add_net("n", driver="zzz", sinks=["a"])

    def test_unknown_sink_rejected(self):
        builder = NetlistBuilder("bad")
        builder.add_cell("a")
        with pytest.raises(NetlistError, match="sink"):
            builder.add_net("n", driver="a", sinks=["zzz"])


class TestNetlistValidation:
    def test_empty_netlist_rejected(self):
        with pytest.raises(NetlistError, match="at least one cell"):
            Netlist("empty", [], [])

    def test_misindexed_cell_rejected(self):
        cells = [Cell(name="a", index=1)]
        with pytest.raises(NetlistError, match="has index"):
            Netlist("bad", cells, [])

    def test_net_referencing_unknown_cell_rejected(self):
        cells = [Cell(name="a", index=0), Cell(name="b", index=1)]
        nets = [Net(name="n", index=0, driver=0, sinks=(5,))]
        with pytest.raises(NetlistError, match="unknown cell index"):
            Netlist("bad", cells, nets)


class TestNetlistAccessors:
    def test_vector_views_are_read_only(self):
        netlist = build_small()
        with pytest.raises(ValueError):
            netlist.cell_widths[0] = 99.0
        with pytest.raises(ValueError):
            netlist.net_weights[0] = 99.0

    def test_net_members_csr(self):
        netlist = build_small()
        members = netlist.net_members(0)
        assert list(members) == [0, 2, 3]  # a drives g1, g2

    def test_nets_of_cell(self):
        netlist = build_small()
        g1 = netlist.cell_by_name("g1").index
        nets = set(netlist.nets_of_cell(g1))
        assert nets == {0, 1, 2}

    def test_nets_of_cells_union(self):
        netlist = build_small()
        nets = netlist.nets_of_cells([0, 1])
        assert set(nets) == {0, 1}
        assert len(nets) == len(set(nets))

    def test_fanin_fanout(self):
        netlist = build_small()
        g2 = netlist.cell_by_name("g2").index
        assert set(netlist.fanin(g2)) == {0, 2}
        assert set(netlist.fanout(g2)) == {4}

    def test_cell_by_name_missing(self):
        netlist = build_small()
        with pytest.raises(NetlistError, match="no cell named"):
            netlist.cell_by_name("does-not-exist")

    def test_iteration_and_len(self):
        netlist = build_small()
        assert len(netlist) == 5
        assert [cell.name for cell in netlist][:2] == ["a", "b"]


class TestNetlistStats:
    def test_stats_values(self):
        netlist = build_small()
        stats = netlist.stats()
        assert stats.num_cells == 5
        assert stats.num_nets == 4
        assert stats.num_primary_inputs == 2
        assert stats.num_primary_outputs == 1
        assert stats.total_cell_width == pytest.approx(1 + 1 + 2 + 3 + 1)
        assert stats.max_net_degree == 3
        assert stats.as_dict()["num_cells"] == 5
