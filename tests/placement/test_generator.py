"""Unit tests for the synthetic circuit generator."""

from __future__ import annotations

import pytest

from repro.errors import NetlistError
from repro.placement import CellKind
from repro.placement.generator import CircuitSpec, generate_circuit


class TestCircuitSpecValidation:
    def test_too_few_cells_rejected(self):
        with pytest.raises(NetlistError, match="at least 8"):
            CircuitSpec(name="x", num_cells=4)

    def test_bad_fraction_rejected(self):
        with pytest.raises(NetlistError, match="input_fraction"):
            CircuitSpec(name="x", num_cells=50, input_fraction=0.9)

    def test_bad_locality_rejected(self):
        with pytest.raises(NetlistError, match="locality"):
            CircuitSpec(name="x", num_cells=50, locality=1.5)

    def test_bad_width_range_rejected(self):
        with pytest.raises(NetlistError, match="width range"):
            CircuitSpec(name="x", num_cells=50, min_cell_width=3.0, max_cell_width=1.0)


class TestGeneratedStructure:
    @pytest.fixture(scope="class")
    def circuit(self):
        return generate_circuit(CircuitSpec(name="gen100", num_cells=100, seed=7))

    def test_cell_count_matches_spec(self, circuit):
        assert circuit.num_cells == 100

    def test_has_inputs_and_outputs(self, circuit):
        stats = circuit.stats()
        assert stats.num_primary_inputs >= 2
        assert stats.num_primary_outputs >= 2

    def test_every_cell_connected(self, circuit):
        for cell in circuit:
            assert len(circuit.nets_of_cell(cell.index)) > 0, f"{cell.name} floats"

    def test_pads_have_zero_delay(self, circuit):
        for cell in circuit:
            if cell.kind in (CellKind.PRIMARY_INPUT, CellKind.PRIMARY_OUTPUT):
                assert cell.delay == 0.0

    def test_no_self_loop_nets(self, circuit):
        for net in circuit.nets:
            assert net.driver not in net.sinks

    def test_primary_inputs_have_no_fanin(self, circuit):
        for cell in circuit:
            if cell.kind is CellKind.PRIMARY_INPUT:
                assert circuit.fanin(cell.index) == ()


class TestGeneratorDeterminism:
    def test_same_spec_same_circuit(self):
        spec = CircuitSpec(name="det", num_cells=80, seed=99)
        a = generate_circuit(spec)
        b = generate_circuit(spec)
        assert a.num_nets == b.num_nets
        assert [c.width for c in a] == [c.width for c in b]
        assert [n.members for n in a.nets] == [n.members for n in b.nets]

    def test_different_seed_different_circuit(self):
        a = generate_circuit(CircuitSpec(name="det", num_cells=80, seed=1))
        b = generate_circuit(CircuitSpec(name="det", num_cells=80, seed=2))
        assert [n.members for n in a.nets] != [n.members for n in b.nets]

    def test_size_scales(self):
        small = generate_circuit(CircuitSpec(name="s", num_cells=60, seed=3))
        large = generate_circuit(CircuitSpec(name="l", num_cells=600, seed=3))
        assert large.num_nets > small.num_nets * 5
