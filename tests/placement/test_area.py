"""Unit and property-based tests for the area objective."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement import Layout, load_benchmark, random_placement
from repro.placement.area import AreaState, full_area, row_widths


@pytest.fixture()
def placement():
    layout = Layout(load_benchmark("mini64"))
    return random_placement(layout, seed=31)


class TestFullArea:
    def test_row_widths_sum_to_total_width(self, placement):
        widths = row_widths(placement)
        assert widths.sum() == pytest.approx(placement.netlist.cell_widths.sum())

    def test_area_is_max_row_times_outline(self, placement):
        layout = placement.layout
        expected = row_widths(placement).max() * layout.num_rows * layout.spec.row_height
        assert full_area(placement) == pytest.approx(expected)

    def test_area_positive(self, placement):
        assert full_area(placement) > 0


class TestAreaState:
    def test_initial_total_matches_full(self, placement):
        state = AreaState(placement)
        assert state.total == pytest.approx(full_area(placement))

    def test_delta_matches_recomputation(self, placement):
        state = AreaState(placement)
        rng = np.random.default_rng(7)
        for _ in range(40):
            a, b = (int(x) for x in rng.integers(0, placement.num_cells, 2))
            delta = state.delta_for_swap(a, b)
            placement.swap_cells(a, b)
            expected = full_area(placement) - state.total
            placement.swap_cells(a, b)
            assert delta == pytest.approx(expected, abs=1e-9)

    def test_commit_keeps_cache_in_sync(self, placement):
        state = AreaState(placement)
        rng = np.random.default_rng(8)
        for _ in range(60):
            a, b = (int(x) for x in rng.integers(0, placement.num_cells, 2))
            placement.swap_cells(a, b)
            state.commit_swap(a, b)
        assert state.total == pytest.approx(full_area(placement))
        assert state.per_row.sum() == pytest.approx(placement.netlist.cell_widths.sum())

    def test_same_row_swap_has_zero_delta(self, placement):
        state = AreaState(placement)
        rows = placement.cell_row()
        same_row = np.flatnonzero(rows == rows[0])
        if len(same_row) >= 2:
            assert state.delta_for_swap(int(same_row[0]), int(same_row[1])) == 0.0

    def test_per_row_read_only(self, placement):
        state = AreaState(placement)
        with pytest.raises(ValueError):
            state.per_row[0] = 0.0


class TestAreaProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 500),
        swaps=st.lists(st.tuples(st.integers(0, 55), st.integers(0, 55)), max_size=25),
    )
    def test_incremental_equals_full_after_any_sequence(self, seed, swaps):
        layout = Layout(load_benchmark("highway"))
        placement = random_placement(layout, seed=seed)
        state = AreaState(placement)
        for a, b in swaps:
            placement.swap_cells(a, b)
            state.commit_swap(a, b)
        assert state.total == pytest.approx(full_area(placement), rel=1e-9)
