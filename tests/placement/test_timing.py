"""Unit tests for the static timing analysis and the incremental surrogate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CostModelError
from repro.placement import (
    CellKind,
    Layout,
    NetlistBuilder,
    build_chain_netlist,
    load_benchmark,
    random_placement,
)
from repro.placement.timing import TimingAnalyzer, TimingModel, TimingState


class TestTimingModel:
    def test_negative_delay_rejected(self):
        with pytest.raises(CostModelError):
            TimingModel(wire_delay_per_unit=-0.1)


class TestAnalyzerOnChain:
    def test_zero_wire_delay_gives_sum_of_gate_delays(self):
        netlist = build_chain_netlist(num_gates=5)
        layout = Layout(netlist)
        placement = random_placement(layout, seed=0)
        analyzer = TimingAnalyzer(netlist, TimingModel(wire_delay_per_unit=0.0))
        result = analyzer.analyze(placement)
        # 5 gates of delay 1 each; pads contribute nothing
        assert result.critical_delay == pytest.approx(5.0)
        # path runs from the PI through all gates to the PO
        assert result.path_length == 7

    def test_wire_delay_increases_with_distance(self):
        netlist = build_chain_netlist(num_gates=5)
        layout = Layout(netlist)
        placement = random_placement(layout, seed=0)
        slow = TimingAnalyzer(netlist, TimingModel(wire_delay_per_unit=0.2)).analyze(placement)
        fast = TimingAnalyzer(netlist, TimingModel(wire_delay_per_unit=0.01)).analyze(placement)
        assert slow.critical_delay > fast.critical_delay

    def test_path_delay_matches_analysis(self):
        netlist = build_chain_netlist(num_gates=5)
        layout = Layout(netlist)
        placement = random_placement(layout, seed=1)
        analyzer = TimingAnalyzer(netlist)
        result = analyzer.analyze(placement)
        recomputed = analyzer.path_delay(placement, result.critical_path)
        assert recomputed == pytest.approx(result.critical_delay)


class TestSequentialBoundaries:
    def build_netlist_with_ff(self):
        builder = NetlistBuilder("ff")
        builder.add_cell("pi", kind=CellKind.PRIMARY_INPUT, delay=0.0)
        builder.add_cell("g1", delay=3.0)
        builder.add_cell("ff", kind=CellKind.SEQUENTIAL, delay=0.5)
        builder.add_cell("g2", delay=2.0)
        builder.add_cell("po", kind=CellKind.PRIMARY_OUTPUT, delay=0.0)
        builder.add_net("n1", driver="pi", sinks=["g1"])
        builder.add_net("n2", driver="g1", sinks=["ff"])
        builder.add_net("n3", driver="ff", sinks=["g2"])
        builder.add_net("n4", driver="g2", sinks=["po"])
        return builder.build()

    def test_paths_break_at_flip_flops(self):
        netlist = self.build_netlist_with_ff()
        layout = Layout(netlist)
        placement = random_placement(layout, seed=2)
        analyzer = TimingAnalyzer(netlist, TimingModel(wire_delay_per_unit=0.0))
        result = analyzer.analyze(placement)
        # two separate paths: pi->g1->ff (3.0) and ff->g2->po (0.5 + 2.0)
        assert result.critical_delay == pytest.approx(3.0)


class TestCycleDetection:
    def test_combinational_cycle_rejected(self):
        builder = NetlistBuilder("cyc")
        builder.add_cell("a", delay=1.0)
        builder.add_cell("b", delay=1.0)
        builder.add_net("n1", driver="a", sinks=["b"])
        builder.add_net("n2", driver="b", sinks=["a"])
        netlist = builder.build()
        with pytest.raises(CostModelError, match="cycle"):
            TimingAnalyzer(netlist)


class TestOnGeneratedCircuits:
    def test_positive_critical_delay(self):
        netlist = load_benchmark("mini64")
        layout = Layout(netlist)
        placement = random_placement(layout, seed=3)
        result = TimingAnalyzer(netlist).analyze(placement)
        assert result.critical_delay > 0
        assert len(result.critical_path) >= 2

    def test_arrival_times_non_negative(self):
        netlist = load_benchmark("mini64")
        layout = Layout(netlist)
        placement = random_placement(layout, seed=3)
        result = TimingAnalyzer(netlist).analyze(placement)
        assert np.all(result.arrival >= 0)


class TestTimingState:
    @pytest.fixture()
    def state(self):
        netlist = load_benchmark("mini64")
        layout = Layout(netlist)
        placement = random_placement(layout, seed=4)
        analyzer = TimingAnalyzer(netlist)
        return placement, TimingState(placement, analyzer, refresh_interval=4)

    def test_initial_delay_matches_exact(self, state):
        placement, timing = state
        assert timing.critical_delay == pytest.approx(timing.exact_delay())

    def test_delta_zero_for_cells_off_critical_path(self, state):
        placement, timing = state
        off_path = [c for c in range(placement.num_cells) if c not in timing.critical_path]
        assert timing.delta_for_swap(off_path[0], off_path[1]) == 0.0

    def test_delta_nonzero_when_path_touched(self, state):
        placement, timing = state
        path = timing.critical_path
        off_path = [c for c in range(placement.num_cells) if c not in path]
        # moving a path cell far away usually changes the path delay estimate
        deltas = [timing.delta_for_swap(path[1], other) for other in off_path[:10]]
        assert any(abs(d) > 0 for d in deltas)

    def test_refresh_interval_keeps_surrogate_bounded(self, state):
        placement, timing = state
        rng = np.random.default_rng(5)
        for _ in range(20):
            a, b = (int(x) for x in rng.integers(0, placement.num_cells, 2))
            placement.swap_cells(a, b)
            timing.commit_swap(a, b)
        # after a refresh the surrogate agrees with the exact analysis
        timing.refresh()
        assert timing.critical_delay == pytest.approx(timing.exact_delay())

    def test_invalid_refresh_interval_rejected(self):
        netlist = load_benchmark("tiny16")
        layout = Layout(netlist)
        placement = random_placement(layout, seed=0)
        with pytest.raises(CostModelError):
            TimingState(placement, TimingAnalyzer(netlist), refresh_interval=0)
