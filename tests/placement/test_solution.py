"""Unit and property-based tests for the placement solution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlacementError
from repro.placement import Layout, Placement, load_benchmark, random_placement


@pytest.fixture(scope="module")
def layout():
    return Layout(load_benchmark("mini64"))


class TestConstruction:
    def test_random_placement_valid(self, layout):
        placement = random_placement(layout, seed=1)
        placement.validate()
        assert placement.num_cells == layout.netlist.num_cells

    def test_random_placement_deterministic(self, layout):
        a = random_placement(layout, seed=5)
        b = random_placement(layout, seed=5)
        assert a.equals(b)

    def test_random_placement_seed_matters(self, layout):
        a = random_placement(layout, seed=5)
        b = random_placement(layout, seed=6)
        assert not a.equals(b)

    def test_rejects_wrong_shape(self, layout):
        with pytest.raises(PlacementError, match="shape"):
            Placement(layout, np.arange(3))

    def test_rejects_out_of_range_slots(self, layout):
        arr = np.arange(layout.netlist.num_cells)
        arr[0] = layout.num_slots + 10
        with pytest.raises(PlacementError, match="out-of-range"):
            Placement(layout, arr)

    def test_rejects_duplicate_slots(self, layout):
        arr = np.arange(layout.netlist.num_cells)
        arr[1] = arr[0]
        with pytest.raises(PlacementError, match="same slot"):
            Placement(layout, arr)


class TestSwap:
    def test_swap_exchanges_slots(self, layout):
        placement = random_placement(layout, seed=2)
        slot_a, slot_b = placement.slot_of(3), placement.slot_of(7)
        placement.swap_cells(3, 7)
        assert placement.slot_of(3) == slot_b
        assert placement.slot_of(7) == slot_a
        placement.validate()

    def test_swap_is_involution(self, layout):
        placement = random_placement(layout, seed=2)
        before = placement.assignment_tuple()
        placement.swap_cells(3, 7)
        placement.swap_cells(3, 7)
        assert placement.assignment_tuple() == before

    def test_self_swap_is_noop(self, layout):
        placement = random_placement(layout, seed=2)
        before = placement.assignment_tuple()
        placement.swap_cells(4, 4)
        assert placement.assignment_tuple() == before

    def test_swap_out_of_range_rejected(self, layout):
        placement = random_placement(layout, seed=2)
        with pytest.raises(PlacementError):
            placement.swap_cells(0, placement.num_cells + 5)

    def test_apply_and_undo_swaps(self, layout):
        placement = random_placement(layout, seed=3)
        before = placement.assignment_tuple()
        swaps = [(0, 1), (2, 3), (1, 3)]
        placement.apply_swaps(swaps)
        assert placement.assignment_tuple() != before
        placement.undo_swaps(swaps)
        assert placement.assignment_tuple() == before


class TestCopyAndSerialisation:
    def test_copy_is_independent(self, layout):
        placement = random_placement(layout, seed=4)
        clone = placement.copy()
        placement.swap_cells(0, 1)
        assert not placement.equals(clone)

    def test_array_round_trip(self, layout):
        placement = random_placement(layout, seed=4)
        rebuilt = Placement.from_array(layout, placement.to_array())
        assert rebuilt.equals(placement)

    def test_set_assignment(self, layout):
        a = random_placement(layout, seed=4)
        b = random_placement(layout, seed=9)
        a.set_assignment(b.to_array())
        assert a.equals(b)
        a.validate()

    def test_set_assignment_rejects_duplicates(self, layout):
        placement = random_placement(layout, seed=4)
        bad = placement.to_array()
        bad[1] = bad[0]
        with pytest.raises(PlacementError):
            placement.set_assignment(bad)

    def test_positions_match_layout(self, layout):
        placement = random_placement(layout, seed=4)
        xs, ys = placement.cell_x(), placement.cell_y()
        for cell in range(0, placement.num_cells, 7):
            x, y = placement.position_of(cell)
            assert x == pytest.approx(xs[cell])
            assert y == pytest.approx(ys[cell])


class TestSwapProperties:
    @settings(max_examples=50, deadline=None)
    @given(swaps=st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)), max_size=30))
    def test_any_swap_sequence_preserves_validity(self, swaps):
        layout = Layout(load_benchmark("mini64"))
        placement = random_placement(layout, seed=11)
        placement.apply_swaps(swaps)
        placement.validate()
        # every cell still occupies exactly one slot
        assert len(set(placement.assignment_tuple())) == placement.num_cells

    @settings(max_examples=50, deadline=None)
    @given(swaps=st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)), max_size=30))
    def test_undo_restores_original(self, swaps):
        layout = Layout(load_benchmark("mini64"))
        placement = random_placement(layout, seed=11)
        before = placement.assignment_tuple()
        placement.apply_swaps(swaps)
        placement.undo_swaps(swaps)
        assert placement.assignment_tuple() == before
