"""Unit tests for the netlist / placement text serialisation."""

from __future__ import annotations

import io

import pytest

from repro.errors import NetlistError, PlacementError
from repro.placement import Layout, load_benchmark, random_placement
from repro.placement.io import (
    netlist_from_string,
    netlist_to_string,
    read_netlist,
    read_placement,
    write_netlist,
    write_placement,
)


class TestNetlistRoundTrip:
    def test_string_round_trip_preserves_structure(self):
        original = load_benchmark("mini64")
        text = netlist_to_string(original)
        rebuilt = netlist_from_string(text)
        assert rebuilt.name == original.name
        assert rebuilt.num_cells == original.num_cells
        assert rebuilt.num_nets == original.num_nets
        assert [c.name for c in rebuilt] == [c.name for c in original]
        assert [c.kind for c in rebuilt] == [c.kind for c in original]
        assert [n.members for n in rebuilt.nets] == [n.members for n in original.nets]
        for rebuilt_cell, original_cell in zip(rebuilt.cells, original.cells):
            assert rebuilt_cell.width == pytest.approx(original_cell.width)
            assert rebuilt_cell.delay == pytest.approx(original_cell.delay)

    def test_round_trip_is_stable(self):
        original = load_benchmark("tiny16")
        once = netlist_to_string(original)
        twice = netlist_to_string(netlist_from_string(once))
        assert once == twice

    def test_file_round_trip(self, tmp_path):
        original = load_benchmark("tiny16")
        path = tmp_path / "tiny16.nl"
        write_netlist(original, path)
        rebuilt = read_netlist(path)
        assert rebuilt.num_nets == original.num_nets


class TestNetlistParsingErrors:
    def test_missing_circuit_line(self):
        with pytest.raises(NetlistError, match="circuit"):
            netlist_from_string("cell a comb 1.0 1.0\n")

    def test_unknown_keyword(self):
        with pytest.raises(NetlistError, match="unknown keyword"):
            netlist_from_string("circuit x\nblob a b c\n")

    def test_unknown_cell_kind(self):
        with pytest.raises(NetlistError, match="unknown cell kind"):
            netlist_from_string("circuit x\ncell a analog 1.0 1.0\n")

    def test_malformed_net_line(self):
        text = "circuit x\ncell a comb 1.0 1.0\nnet n 1.0 a\n"
        with pytest.raises(NetlistError, match="malformed net"):
            netlist_from_string(text)

    def test_empty_file(self):
        with pytest.raises(NetlistError, match="no 'circuit'"):
            netlist_from_string("# only a comment\n")

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "# header\n\ncircuit tiny\n"
            "cell a pi 1.0 0.0\n# a comment\ncell b po 1.0 0.0\n"
            "net n 1.0 a b\n"
        )
        netlist = netlist_from_string(text)
        assert netlist.num_cells == 2
        assert netlist.num_nets == 1


class TestPlacementRoundTrip:
    def test_round_trip(self, tmp_path):
        netlist = load_benchmark("mini64")
        layout = Layout(netlist)
        placement = random_placement(layout, seed=5)
        path = tmp_path / "mini64.pl"
        write_placement(placement, path)
        rebuilt = read_placement(path, layout)
        assert rebuilt.equals(placement)

    def test_stream_round_trip(self):
        netlist = load_benchmark("tiny16")
        layout = Layout(netlist)
        placement = random_placement(layout, seed=1)
        buffer = io.StringIO()
        write_placement(placement, buffer)
        buffer.seek(0)
        rebuilt = read_placement(buffer, layout)
        assert rebuilt.equals(placement)

    def test_circuit_mismatch_rejected(self):
        netlist_a = load_benchmark("tiny16")
        netlist_b = load_benchmark("mini64")
        placement = random_placement(Layout(netlist_a), seed=1)
        buffer = io.StringIO()
        write_placement(placement, buffer)
        buffer.seek(0)
        with pytest.raises(PlacementError, match="is for circuit"):
            read_placement(buffer, Layout(netlist_b))

    def test_missing_cells_rejected(self):
        netlist = load_benchmark("tiny16")
        layout = Layout(netlist)
        text = f"placement {netlist.name}\n{netlist.cell(0).name} 0\n"
        with pytest.raises(PlacementError, match="misses cells"):
            read_placement(io.StringIO(text), layout)

    def test_unknown_cell_rejected(self):
        netlist = load_benchmark("tiny16")
        layout = Layout(netlist)
        text = f"placement {netlist.name}\nnot_a_cell 0\n"
        with pytest.raises(PlacementError, match="not in circuit"):
            read_placement(io.StringIO(text), layout)
