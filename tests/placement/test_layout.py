"""Unit tests for the row/slot layout geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.placement import Layout, LayoutSpec, load_benchmark


class TestLayoutSpec:
    def test_defaults_valid(self):
        spec = LayoutSpec()
        assert spec.aspect_ratio == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"aspect_ratio": 0.0},
            {"row_height": -1.0},
            {"slot_utilization": 0.0},
            {"slot_utilization": 1.5},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(LayoutError):
            LayoutSpec(**kwargs)


class TestLayoutGeometry:
    @pytest.fixture(scope="class")
    def layout(self):
        return Layout(load_benchmark("mini64"))

    def test_enough_slots_for_all_cells(self, layout):
        assert layout.num_slots >= layout.netlist.num_cells

    def test_slot_count_consistency(self, layout):
        assert layout.num_slots == layout.num_rows * layout.slots_per_row
        assert len(layout.slot_x) == layout.num_slots
        assert len(layout.slot_y) == layout.num_slots
        assert len(layout.slot_row) == layout.num_slots

    def test_coordinates_within_region(self, layout):
        assert np.all(layout.slot_x > 0)
        assert np.all(layout.slot_x < layout.width)
        assert np.all(layout.slot_y > 0)
        assert np.all(layout.slot_y < layout.height)

    def test_rows_are_consistent_with_y(self, layout):
        # all slots of one row share the same y coordinate
        for row in range(layout.num_rows):
            ys = layout.slot_y[layout.slot_row == row]
            assert np.allclose(ys, ys[0])

    def test_half_perimeter(self, layout):
        assert layout.half_perimeter() == pytest.approx(layout.width + layout.height)

    def test_arrays_read_only(self, layout):
        with pytest.raises(ValueError):
            layout.slot_x[0] = 1.0

    def test_roughly_square_by_default(self, layout):
        ratio = layout.height / layout.width
        assert 0.4 < ratio < 2.5

    def test_utilization_below_one_adds_empty_slots(self):
        netlist = load_benchmark("mini64")
        loose = Layout(netlist, LayoutSpec(slot_utilization=0.5))
        dense = Layout(netlist, LayoutSpec(slot_utilization=1.0))
        assert loose.num_slots > dense.num_slots
        assert loose.num_slots >= 2 * netlist.num_cells - loose.slots_per_row

    def test_aspect_ratio_changes_shape(self):
        netlist = load_benchmark("mini64")
        wide = Layout(netlist, LayoutSpec(aspect_ratio=0.25))
        tall = Layout(netlist, LayoutSpec(aspect_ratio=4.0))
        assert wide.num_rows < tall.num_rows
