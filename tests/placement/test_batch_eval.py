"""Property tests for the batched swap-evaluation kernel.

The contract under test: for any batch of candidate pairs, the batched path
(:meth:`CostEvaluator.evaluate_swaps_batch` and the per-objective
``deltas_for_swaps`` kernels), the scalar path (``evaluate_swap`` /
``delta_for_swap``) and a from-scratch recomputation (``full_hpwl`` /
``full_area`` on a mutated copy) must all agree — including after arbitrary
committed swap sequences, on bbox-edge cells, and on degenerate nets
(minimum-degree two-pin nets and nets whose pins share coordinates, which
exercise the edge-multiplicity bookkeeping).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.placement import (
    CellKind,
    CostEvaluator,
    Layout,
    NetlistBuilder,
    load_benchmark,
    random_placement,
)
from repro.placement.area import AreaState, full_area
from repro.placement.wirelength import WirelengthState, full_hpwl

ATOL = 1e-6


def build_degenerate_netlist():
    """A circuit stressing bbox-edge corner cases.

    Mostly two-pin nets (every pin is on a bbox edge), one high-fanout net
    (many pins share bbox edges once placed in few rows), and a star where
    several sinks will often share a row/column coordinate — the cases where
    the edge-multiplicity counts and the segment-reduce fallback matter.
    """
    builder = NetlistBuilder("degenerate")
    builder.add_cell("pi0", kind=CellKind.PRIMARY_INPUT, delay=0.0)
    for index in range(14):
        builder.add_cell(f"g{index}", width=1.0 + 0.25 * (index % 3))
    builder.add_cell("po0", kind=CellKind.PRIMARY_OUTPUT, delay=0.0)
    # chain of two-pin nets: minimum-degree nets, both pins always on the bbox
    builder.add_net("n_in", driver="pi0", sinks=["g0"])
    for index in range(13):
        builder.add_net(f"n{index}", driver=f"g{index}", sinks=[f"g{index + 1}"])
    # one high-fanout net and a star (shared-coordinate pins after placement)
    builder.add_net("n_fan", driver="g0", sinks=[f"g{i}" for i in range(2, 14, 2)], weight=2.0)
    builder.add_net("n_star", driver="g1", sinks=["g5", "g9", "g13", "po0"])
    return builder.build()


def circuits():
    return [
        Layout(load_benchmark("tiny16")),
        Layout(load_benchmark("mini64")),
        Layout(build_degenerate_netlist()),
    ]


@pytest.mark.parametrize("layout_index", [0, 1, 2])
def test_wirelength_batch_scalar_full_agree(layout_index):
    layout = circuits()[layout_index]
    placement = random_placement(layout, seed=layout_index)
    state = WirelengthState(placement)
    rng = np.random.default_rng(layout_index + 10)
    n = placement.num_cells
    pairs = rng.integers(0, n, size=(300, 2))
    batch = state.deltas_for_swaps(pairs[:, 0], pairs[:, 1])
    for k, (a, b) in enumerate(pairs):
        a, b = int(a), int(b)
        scalar = state.delta_for_swap(a, b)
        placement.swap_cells(a, b)
        _, swapped_total = full_hpwl(placement)
        placement.swap_cells(a, b)
        exact = swapped_total - state.total
        assert batch[k] == pytest.approx(exact, abs=ATOL)
        assert scalar == pytest.approx(exact, abs=ATOL)
        assert scalar == batch[k]  # scalar routes through the batch kernel


@pytest.mark.parametrize("layout_index", [0, 1, 2])
def test_area_batch_scalar_full_agree(layout_index):
    layout = circuits()[layout_index]
    placement = random_placement(layout, seed=layout_index + 1)
    state = AreaState(placement)
    rng = np.random.default_rng(layout_index + 20)
    n = placement.num_cells
    pairs = rng.integers(0, n, size=(300, 2))
    batch = state.deltas_for_swaps(pairs[:, 0], pairs[:, 1])
    for k, (a, b) in enumerate(pairs):
        a, b = int(a), int(b)
        scalar = state.delta_for_swap(a, b)
        placement.swap_cells(a, b)
        exact = full_area(placement) - state.total
        placement.swap_cells(a, b)
        assert batch[k] == pytest.approx(exact, abs=ATOL)
        assert scalar == pytest.approx(exact, abs=ATOL)


@pytest.mark.parametrize("layout_index", [0, 1, 2])
def test_cost_batch_equals_scalar(layout_index):
    layout = circuits()[layout_index]
    evaluator = CostEvaluator(random_placement(layout, seed=layout_index + 2))
    rng = np.random.default_rng(layout_index + 30)
    n = evaluator.placement.num_cells
    pairs = rng.integers(0, n, size=(200, 2))
    # include self-swaps, which must score the current cost
    pairs[::50, 1] = pairs[::50, 0]
    batch = evaluator.evaluate_swaps_batch(pairs)
    for k, (a, b) in enumerate(pairs):
        assert batch[k] == evaluator.evaluate_swap(int(a), int(b))
    self_mask = pairs[:, 0] == pairs[:, 1]
    assert np.all(batch[self_mask] == evaluator.cost())


@pytest.mark.parametrize("layout_index", [0, 1, 2])
def test_batch_agrees_after_committed_walk(layout_index):
    """Interleave commits and batch evaluations: caches must never drift."""
    layout = circuits()[layout_index]
    evaluator = CostEvaluator(random_placement(layout, seed=layout_index + 3))
    rng = np.random.default_rng(layout_index + 40)
    n = evaluator.placement.num_cells
    for _ in range(12):
        for _ in range(8):
            a, b = (int(x) for x in rng.integers(0, n, 2))
            evaluator.commit_swap(a, b)
        evaluator.verify_consistency()
        pairs = rng.integers(0, n, size=(64, 2))
        batch = evaluator.evaluate_swaps_batch(pairs)
        spot = rng.integers(0, len(pairs), size=8)
        for k in spot:
            a, b = (int(x) for x in pairs[k])
            assert batch[k] == evaluator.evaluate_swap(a, b)
            # from-scratch wirelength cross-check on a mutated copy
            evaluator.placement.swap_cells(a, b)
            _, exact_wl = full_hpwl(evaluator.placement)
            exact_area = full_area(evaluator.placement)
            evaluator.placement.swap_cells(a, b)
            wl_delta = evaluator._wirelength.deltas_for_swaps([a], [b])[0]
            area_delta = evaluator._area.deltas_for_swaps([a], [b])[0]
            assert evaluator._wirelength.total + wl_delta == pytest.approx(exact_wl, abs=ATOL)
            assert evaluator._area.total + area_delta == pytest.approx(exact_area, abs=ATOL)


def test_save_restore_roundtrip():
    layout = Layout(load_benchmark("mini64"))
    evaluator = CostEvaluator(random_placement(layout, seed=9))
    rng = np.random.default_rng(50)
    n = evaluator.placement.num_cells
    state = evaluator.save_state()
    cost_before = evaluator.cost()
    assignment_before = evaluator.placement.assignment_tuple()
    for _ in range(25):
        a, b = (int(x) for x in rng.integers(0, n, 2))
        evaluator.commit_swap(a, b)
    assert evaluator.placement.assignment_tuple() != assignment_before
    evaluator.restore_state(state)
    assert evaluator.placement.assignment_tuple() == assignment_before
    assert evaluator.cost() == cost_before
    evaluator.verify_consistency()
    # the restored caches must keep producing exact deltas
    pairs = rng.integers(0, n, size=(64, 2))
    batch = evaluator.evaluate_swaps_batch(pairs)
    for k in range(0, 64, 16):
        a, b = (int(x) for x in pairs[k])
        assert batch[k] == evaluator.evaluate_swap(a, b)


def test_batch_empty_and_shapes():
    layout = Layout(load_benchmark("tiny16"))
    evaluator = CostEvaluator(random_placement(layout, seed=0))
    assert evaluator.evaluate_swaps_batch([]).shape == (0,)
    assert evaluator.evaluate_swaps_batch([(0, 1)]).shape == (1,)
    assert evaluator.evaluate_swaps_batch(np.array([[0, 1], [2, 3]])).shape == (2,)
