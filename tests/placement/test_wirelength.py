"""Unit and property-based tests for the HPWL wirelength objective."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement import Layout, load_benchmark, random_placement
from repro.placement.wirelength import WirelengthState, full_hpwl, net_hpwl


@pytest.fixture(scope="module")
def placement():
    layout = Layout(load_benchmark("mini64"))
    return random_placement(layout, seed=21)


class TestFullHpwl:
    def test_per_net_matches_single_net_function(self, placement):
        per_net, total = full_hpwl(placement)
        for net_index in range(placement.netlist.num_nets):
            assert per_net[net_index] == pytest.approx(net_hpwl(placement, net_index))

    def test_total_is_weighted_sum(self, placement):
        per_net, total = full_hpwl(placement)
        expected = float(np.dot(per_net, placement.netlist.net_weights))
        assert total == pytest.approx(expected)

    def test_hpwl_non_negative_and_bounded(self, placement):
        per_net, _ = full_hpwl(placement)
        assert np.all(per_net >= 0)
        assert np.all(per_net <= placement.layout.half_perimeter())

    def test_two_pin_net_is_manhattan_distance(self):
        layout = Layout(load_benchmark("tiny16"))
        placement = random_placement(layout, seed=3)
        netlist = placement.netlist
        for net in netlist.nets:
            if net.degree != 2:
                continue
            a, b = net.members
            ax, ay = placement.position_of(a)
            bx, by = placement.position_of(b)
            assert net_hpwl(placement, net.index) == pytest.approx(abs(ax - bx) + abs(ay - by))
            break
        else:
            pytest.skip("no two-pin net in tiny16")


class TestIncrementalState:
    def test_initial_state_matches_full(self, placement):
        state = WirelengthState(placement)
        _, total = full_hpwl(placement)
        assert state.total == pytest.approx(total)

    def test_delta_matches_recomputation(self, placement):
        state = WirelengthState(placement)
        rng = np.random.default_rng(0)
        for _ in range(30):
            a, b = rng.integers(0, placement.num_cells, 2)
            delta = state.delta_for_swap(int(a), int(b))
            placement.swap_cells(int(a), int(b))
            _, new_total = full_hpwl(placement)
            placement.swap_cells(int(a), int(b))  # restore
            assert delta == pytest.approx(new_total - state.total, abs=1e-9)

    def test_commit_keeps_cache_in_sync(self, placement):
        state = WirelengthState(placement)
        rng = np.random.default_rng(1)
        for _ in range(50):
            a, b = (int(x) for x in rng.integers(0, placement.num_cells, 2))
            placement.swap_cells(a, b)
            state.commit_swap(a, b)
        _, expected = full_hpwl(placement)
        assert state.total == pytest.approx(expected)

    def test_self_swap_has_zero_delta(self, placement):
        state = WirelengthState(placement)
        assert state.delta_for_swap(5, 5) == 0.0

    def test_per_net_view_read_only(self, placement):
        state = WirelengthState(placement)
        with pytest.raises(ValueError):
            state.per_net[0] = 1.0


class TestIncrementalProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        swaps=st.lists(st.tuples(st.integers(0, 55), st.integers(0, 55)), min_size=1, max_size=20),
    )
    def test_incremental_equals_full_after_any_sequence(self, seed, swaps):
        layout = Layout(load_benchmark("highway"))
        placement = random_placement(layout, seed=seed)
        state = WirelengthState(placement)
        for a, b in swaps:
            placement.swap_cells(a, b)
            state.commit_swap(a, b)
        _, expected = full_hpwl(placement)
        assert state.total == pytest.approx(expected, rel=1e-9)
