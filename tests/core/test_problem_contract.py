"""Protocol-conformance suite, parameterized over every problem domain.

One battery of contract tests runs against each registered
:class:`~repro.core.protocols.SearchProblem` implementation (placement and
QAP).  The contract is exactly what the engine layers rely on:

* **batch == scalar == from-scratch** — a batched trial evaluation, the
  scalar path and the cost of a freshly built evaluator on the mutated
  assignment must agree (the placement domain's timing surrogate is an
  approximation between exact refreshes, hence its looser scratch
  tolerance; scalar-vs-batch equality is exact in both domains);
* **delta-adopt == full-install** — applying a swap-list delta with
  ``exact_timing=True`` must land in the same state as installing the full
  target assignment (what makes the wire protocol's two shipment forms
  interchangeable);
* **empty/degenerate inputs** — ``evaluate_swaps_batch([])`` and
  ``apply_swaps([])`` return/no-op consistently, self-pairs score the
  current cost and never count as work;
* **snapshots** — ``save_state``/``restore_state`` round-trips;
* **seeded determinism** — identically-seeded runs (serial and parallel on
  the simulated backend) produce identical trajectories.

The whole battery is additionally parameterized over the kernel *backend*:

* ``numpy-direct`` — the shipped evaluator with the frozen pre-dispatch
  reference kernel injected (the oracle);
* ``xp-numpy`` — the shipped xp-generic kernels forced onto the NumPy
  backend (``device="cpu"``), which must be bit-identical to the oracle;
* ``xp-cupy`` — the same shipped kernels on a CUDA device (skipped when no
  usable cupy install is present).

Because ``xp-numpy`` and ``numpy-direct`` run the identical battery, any
behavioural drift introduced by the dispatch layer fails twice over — once
against the frozen kernel's results, once against the contract itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro import (
    ParallelSearchParams,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    run_parallel_search,
)
from repro.accel import cuda_available
from repro.core import get_domain
from repro.core.protocols import SearchProblem, SwapEvaluator, ensure_search_problem
from repro.parallel.delta import swap_list_between


@dataclass(frozen=True)
class DomainSpec:
    domain: str
    instance: str
    #: Tolerance of the batch-prediction-versus-fresh-evaluator check.  QAP
    #: deltas are exact; the placement cost uses an incremental timing
    #: surrogate between exact refreshes, so its trial predictions carry a
    #: small, bounded approximation error by design.
    scratch_atol: float


SPECS = [
    DomainSpec(domain="placement", instance="mini64", scratch_atol=2e-2),
    DomainSpec(domain="qap", instance="rand32", scratch_atol=1e-9),
]

BACKENDS = [
    "numpy-direct",
    "xp-numpy",
    pytest.param(
        "xp-cupy",
        marks=pytest.mark.skipif(
            not cuda_available(), reason="cupy/CUDA device not available"
        ),
    ),
]


def _inject_reference_kernel(evaluator, domain: str) -> None:
    """Route the evaluator's batch deltas through the frozen direct kernel."""
    if domain == "qap":
        from repro.problems.qap.evaluator import deltas_for_swaps_reference

        evaluator.deltas_for_swaps = (
            lambda a, b: deltas_for_swaps_reference(evaluator, a, b)
        )
    else:
        from repro.placement.wirelength import deltas_for_swaps_reference

        state = evaluator._wirelength
        state.deltas_for_swaps = (
            lambda a, b: deltas_for_swaps_reference(state, a, b)
        )


def make_backend_evaluator(problem, domain: str, backend: str, *, seed: int = 3):
    """An evaluator for ``problem`` running its kernels on ``backend``."""
    device = "cuda" if backend == "xp-cupy" else "cpu"
    evaluator = problem.make_evaluator(problem.random_solution(seed=seed), device=device)
    if backend == "numpy-direct":
        _inject_reference_kernel(evaluator, domain)
    return evaluator


@pytest.fixture(scope="module", params=SPECS, ids=lambda spec: spec.domain)
def spec(request):
    return request.param


@pytest.fixture(scope="module")
def problem(spec):
    return get_domain(spec.domain).build_problem(spec.instance, reference_seed=0)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def evaluator(problem, spec, backend):
    return make_backend_evaluator(problem, spec.domain, backend)


class TestProtocolSurface:
    def test_problem_satisfies_the_protocol(self, problem):
        ensure_search_problem(problem)
        assert isinstance(problem, SearchProblem)
        assert problem.num_cells >= 2
        assert isinstance(problem.name, str) and problem.name

    def test_evaluator_satisfies_the_protocol(self, evaluator, problem):
        assert isinstance(evaluator, SwapEvaluator)
        assert evaluator.num_cells == problem.num_cells
        assert evaluator.instance_name == problem.name
        assert evaluator.evaluations == 0

    def test_work_unit_hooks(self, problem):
        install = problem.install_work_units()
        assert install >= 1.0
        assert problem.adopt_work_units(0) >= 1.0
        # a huge delta never charges more than a full install
        assert problem.adopt_work_units(10**6) == pytest.approx(install)

    def test_random_solutions_are_seeded_permutation_like(self, problem):
        first = problem.random_solution(seed=5)
        again = problem.random_solution(seed=5)
        other = problem.random_solution(seed=6)
        assert np.array_equal(first, again)
        assert not np.array_equal(first, other)
        assert first.shape == (problem.num_cells,)
        assert len(np.unique(first)) == problem.num_cells  # distinct positions


class TestBatchScalarScratch:
    def test_batch_equals_scalar_including_self_pairs(self, evaluator):
        rng = np.random.default_rng(11)
        n = evaluator.num_cells
        pairs = rng.integers(0, n, size=(200, 2))
        pairs[::25, 1] = pairs[::25, 0]  # sprinkle self-pairs
        batch = evaluator.evaluate_swaps_batch(pairs)
        assert batch.shape == (200,)
        for k, (a, b) in enumerate(pairs.tolist()):
            assert batch[k] == evaluator.evaluate_swap(int(a), int(b))
        self_mask = pairs[:, 0] == pairs[:, 1]
        assert np.all(batch[self_mask] == evaluator.cost())

    def test_batch_matches_fresh_evaluator(self, problem, evaluator, spec):
        rng = np.random.default_rng(12)
        n = evaluator.num_cells
        pairs = rng.integers(0, n, size=(40, 2))
        batch = evaluator.evaluate_swaps_batch(pairs)
        for (a, b), predicted in zip(pairs.tolist(), batch):
            mutated = evaluator.snapshot()
            mutated[[a, b]] = mutated[[b, a]]
            scratch = problem.make_evaluator(mutated).cost()
            assert predicted == pytest.approx(scratch, abs=spec.scratch_atol)

    def test_commit_lands_on_the_evaluated_cost(self, evaluator, spec):
        rng = np.random.default_rng(13)
        n = evaluator.num_cells
        for _ in range(20):
            a, b = (int(x) for x in rng.integers(0, n, 2))
            predicted = evaluator.evaluate_swap(a, b)
            committed = evaluator.commit_swap(a, b)
            assert committed == pytest.approx(predicted, abs=spec.scratch_atol)
        evaluator.verify_consistency()

    def test_self_pairs_do_not_count_as_work(self, evaluator):
        before = evaluator.evaluations
        evaluator.evaluate_swaps_batch([(4, 4), (5, 5)])
        evaluator.commit_swap(6, 6)
        assert evaluator.evaluations == before


class TestDeltaAdoptEqualsFullInstall:
    @staticmethod
    def _swapped_target(base: np.ndarray, *, seed: int, swaps: int) -> np.ndarray:
        """A target reachable from ``base`` by swaps — like every solution of
        a protocol round (two independent random placements may occupy
        different slot subsets, which the wire protocol never produces)."""
        target = base.copy()
        rng = np.random.default_rng(seed)
        for _ in range(swaps):
            a, b = rng.integers(0, base.shape[0], size=2)
            target[[a, b]] = target[[b, a]]
        return target

    def test_swap_list_delta_matches_install(self, problem):
        base = problem.random_solution(seed=1)
        target = self._swapped_target(base, seed=2, swaps=12)
        delta_eval = problem.make_evaluator(base)
        delta = swap_list_between(base, target)
        assert delta.shape[0] > 0
        evaluations_before = delta_eval.evaluations
        delta_cost = delta_eval.apply_swaps(delta, exact_timing=True)
        full_cost = problem.make_evaluator(target).cost()
        assert np.array_equal(delta_eval.snapshot(), target)
        assert delta_cost == pytest.approx(full_cost, abs=1e-6)
        # protocol bookkeeping, not search work
        assert delta_eval.evaluations == evaluations_before
        delta_eval.verify_consistency()

    def test_adopt_after_search_walk(self, problem):
        """Delta adoption must stay exact on caches warmed by a real walk."""
        evaluator = problem.make_evaluator(problem.random_solution(seed=4))
        rng = np.random.default_rng(44)
        n = evaluator.num_cells
        for _ in range(30):
            a, b = (int(x) for x in rng.integers(0, n, 2))
            evaluator.commit_swap(a, b)
        target = self._swapped_target(evaluator.snapshot(), seed=5, swaps=9)
        delta = swap_list_between(evaluator.snapshot(), target)
        adopted = evaluator.apply_swaps(delta, exact_timing=True)
        assert np.array_equal(evaluator.snapshot(), target)
        assert adopted == pytest.approx(
            problem.make_evaluator(target).cost(), abs=1e-6
        )


class TestEmptyAndDegenerateInputs:
    def test_empty_batch_returns_empty_float_array(self, evaluator):
        for empty in ([], np.zeros((0, 2), dtype=np.int64)):
            result = evaluator.evaluate_swaps_batch(empty)
            assert result.shape == (0,)
            assert result.dtype == np.float64

    def test_empty_apply_swaps_is_a_noop(self, evaluator):
        cost = evaluator.cost()
        assignment = evaluator.snapshot()
        work = evaluator.evaluations
        for empty in ([], np.zeros((0, 2), dtype=np.int64)):
            assert evaluator.apply_swaps(empty) == pytest.approx(cost, abs=1e-9)
            assert evaluator.apply_swaps(empty, exact_timing=True) == pytest.approx(
                cost, abs=1e-9
            )
        assert np.array_equal(evaluator.snapshot(), assignment)
        assert evaluator.evaluations == work

    def test_self_pairs_inside_apply_swaps_are_dropped(self, evaluator):
        cost = evaluator.cost()
        assignment = evaluator.snapshot()
        assert evaluator.apply_swaps([(3, 3), (7, 7)]) == pytest.approx(
            cost, abs=1e-9
        )
        assert np.array_equal(evaluator.snapshot(), assignment)


class TestSnapshots:
    def test_save_restore_roundtrip(self, evaluator):
        state = evaluator.save_state()
        cost = evaluator.cost()
        assignment = evaluator.snapshot()
        rng = np.random.default_rng(21)
        n = evaluator.num_cells
        for _ in range(15):
            a, b = (int(x) for x in rng.integers(0, n, 2))
            evaluator.commit_swap(a, b)
        assert not np.array_equal(evaluator.snapshot(), assignment)
        evaluator.restore_state(state)
        assert np.array_equal(evaluator.snapshot(), assignment)
        assert evaluator.cost() == cost
        evaluator.verify_consistency()

    def test_install_solution_matches_fresh_evaluator(self, problem, evaluator):
        target = problem.random_solution(seed=8)
        installed = evaluator.install_solution(target)
        assert np.array_equal(evaluator.snapshot(), target)
        assert installed == pytest.approx(
            problem.make_evaluator(target).cost(), abs=1e-9
        )


class TestUndoSwaps:
    def test_undo_restores_assignment_and_cost(self, problem):
        evaluator = problem.make_evaluator(problem.random_solution(seed=6))
        before = evaluator.snapshot()
        cost_before = evaluator.cost()
        rng = np.random.default_rng(61)
        n = evaluator.num_cells
        pairs = rng.integers(0, n, size=(9, 2))
        evaluator.apply_swaps(pairs)
        work_after_apply = evaluator.evaluations
        undone = evaluator.undo_swaps(pairs)
        assert np.array_equal(evaluator.snapshot(), before)
        assert undone == pytest.approx(cost_before, abs=1e-6)
        # reversal is bookkeeping, not search work
        assert evaluator.evaluations == work_after_apply

    def test_undo_empty_sequence_is_a_noop(self, evaluator):
        before = evaluator.snapshot()
        cost = evaluator.cost()
        assert evaluator.undo_swaps([]) == pytest.approx(cost, abs=1e-9)
        assert np.array_equal(evaluator.snapshot(), before)

    def test_undo_after_sequential_commits(self, problem):
        evaluator = problem.make_evaluator(problem.random_solution(seed=7))
        before = evaluator.snapshot()
        pairs = [(1, 5), (0, 3), (1, 2)]
        for a, b in pairs:
            evaluator.commit_swap(a, b)
        evaluator.undo_swaps(pairs)
        assert np.array_equal(evaluator.snapshot(), before)


class TestMaskAwareBatchContract:
    """The batch-scoring guarantees the vectorized iteration driver builds on."""

    def test_batch_is_dense_float64_aligned_with_pairs(self, evaluator):
        rng = np.random.default_rng(31)
        n = evaluator.num_cells
        pairs = rng.integers(0, n, size=(17, 2))
        costs = evaluator.evaluate_swaps_batch(pairs)
        assert costs.shape == (17,)
        assert costs.dtype == np.float64
        assert np.all(np.isfinite(costs))

    def test_fused_batch_equals_per_range_batches(self, evaluator):
        """Scoring is batch-size invariant: fusing several ranges' step-1
        pairs into one call must be bit-identical to scoring each range's
        batch separately (what lets the driver fuse before states diverge)."""
        rng = np.random.default_rng(32)
        n = evaluator.num_cells
        chunks = [rng.integers(0, n, size=(k, 2)) for k in (7, 5, 9)]
        fused = evaluator.evaluate_swaps_batch(np.concatenate(chunks))
        split = np.concatenate([evaluator.evaluate_swaps_batch(c) for c in chunks])
        assert np.array_equal(fused, split)

    def _masked_builder(self, problem, admissible):
        from repro.tabu import CompoundMoveBuilder, full_range

        evaluator = problem.make_evaluator(problem.random_solution(seed=8))
        builder = CompoundMoveBuilder(
            evaluator,
            full_range(evaluator.num_cells),
            pairs_per_step=6,
            depth=1,
            early_accept=False,
            admissible=admissible,
        )
        return evaluator, builder

    def test_empty_mask_selects_plain_argmin(self, problem):
        """``None`` from the hook (nothing tabu) must match no hook at all."""
        seen = {}

        def admissible(pairs, costs):
            seen["costs"] = costs.copy()
            return None

        evaluator, builder = self._masked_builder(problem, admissible)
        rng = np.random.default_rng(40)
        builder.step(rng)
        move = builder.finalize()
        assert move.swaps[0].cost_after == float(np.min(seen["costs"]))

    def test_all_tabu_falls_back_to_overall_best(self, problem):
        """With every pair masked out the step still commits the best pair —
        the builder must always produce a move (the driver's move-level
        tabu check guards acceptance)."""
        seen = {}

        def admissible(pairs, costs):
            seen["costs"] = costs.copy()
            return np.zeros(len(pairs), dtype=bool)

        evaluator, builder = self._masked_builder(problem, admissible)
        builder.step(np.random.default_rng(41))
        move = builder.finalize()
        assert move.depth == 1
        assert move.swaps[0].cost_after == float(np.min(seen["costs"]))

    def test_aspiration_override_prefers_admissible_pair(self, problem):
        """A mask admitting only one (non-optimal) pair — e.g. a tabu batch
        with a single aspiring entry — must select exactly that pair."""
        seen = {}

        def admissible(pairs, costs):
            mask = np.zeros(len(pairs), dtype=bool)
            worst = int(np.argmax(costs))
            mask[worst] = True
            seen["worst"] = float(costs[worst])
            return mask

        evaluator, builder = self._masked_builder(problem, admissible)
        builder.step(np.random.default_rng(42))
        move = builder.finalize()
        assert move.swaps[0].cost_after == seen["worst"]


class TestBackendKernelParity:
    """The shipped xp-generic kernels against the frozen direct kernels."""

    def _pairs(self, n: int, count: int, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, n, size=(count, 2))
        pairs[::17, 1] = pairs[::17, 0]  # sprinkle self-pairs
        return pairs

    def test_xp_numpy_batch_is_bit_identical_to_reference(self, problem, spec):
        shipped = make_backend_evaluator(problem, spec.domain, "xp-numpy")
        oracle = make_backend_evaluator(problem, spec.domain, "numpy-direct")
        pairs = self._pairs(shipped.num_cells, 300, seed=91)
        assert np.array_equal(
            shipped.evaluate_swaps_batch(pairs), oracle.evaluate_swaps_batch(pairs)
        )

    def test_parity_holds_along_a_committed_walk(self, problem, spec):
        """Identity must survive cache mutation, not just the fresh state."""
        shipped = make_backend_evaluator(problem, spec.domain, "xp-numpy")
        oracle = make_backend_evaluator(problem, spec.domain, "numpy-direct")
        rng = np.random.default_rng(92)
        n = shipped.num_cells
        for step in range(12):
            pairs = self._pairs(n, 40, seed=100 + step)
            assert np.array_equal(
                shipped.evaluate_swaps_batch(pairs),
                oracle.evaluate_swaps_batch(pairs),
            )
            a, b = (int(x) for x in rng.integers(0, n, 2))
            assert shipped.commit_swap(a, b) == oracle.commit_swap(a, b)
        shipped.verify_consistency()
        oracle.verify_consistency()

    @pytest.mark.skipif(not cuda_available(), reason="cupy/CUDA device not available")
    def test_xp_cupy_batch_matches_reference(self, problem, spec):
        shipped = make_backend_evaluator(problem, spec.domain, "xp-cupy")
        oracle = make_backend_evaluator(problem, spec.domain, "numpy-direct")
        pairs = self._pairs(shipped.num_cells, 300, seed=91)
        np.testing.assert_allclose(
            shipped.evaluate_swaps_batch(pairs),
            oracle.evaluate_swaps_batch(pairs),
            atol=spec.scratch_atol,
            rtol=0.0,
        )


class TestScratchPoolAndTransferAccounting:
    """Steady-state allocation/transfer pins for the accel-backed evaluators."""

    def _array_backend(self, evaluator, domain: str):
        return evaluator._xb if domain == "qap" else evaluator._wirelength._xb

    def test_steady_state_adds_no_pool_entries(self, problem, spec):
        """After one warm-up pass over the driver's batch sizes, further
        iterations must reuse pooled buffers — no new keys, bounded pool."""
        evaluator = make_backend_evaluator(problem, spec.domain, "xp-numpy")
        xb = self._array_backend(evaluator, spec.domain)
        rng = np.random.default_rng(93)
        n = evaluator.num_cells
        sizes = (3, 5, 8)  # a driver alternates between a handful of sizes
        batches = {m: rng.integers(0, n, size=(m, 2)) for m in sizes}
        for m in sizes:  # warm-up
            evaluator.evaluate_swaps_batch(batches[m])
        warm = xb.pool_size()
        for _ in range(10):  # steady state
            for m in sizes:
                evaluator.evaluate_swaps_batch(batches[m])
        assert xb.pool_size() == warm
        assert warm <= xb.MAX_POOL_KEYS

    def test_qap_scratch_block_identity_is_stable(self, problem, spec):
        """Same batch size → views over the very same pooled block (no
        re-allocation); a different size gets its own block."""
        if spec.domain != "qap":
            pytest.skip("QAP is the scratch-pack consumer")
        evaluator = make_backend_evaluator(problem, spec.domain, "xp-numpy")
        first = evaluator._scratch_for(6)
        again = evaluator._scratch_for(6)
        assert all(np.shares_memory(a, b) for a, b in zip(first, again))
        other = evaluator._scratch_for(9)
        assert not np.shares_memory(first[0], other[0])

    def test_cpu_backend_moves_zero_bytes(self, problem, spec, backend):
        """On the CPU paths to_device/to_host are identities — the counters
        prove the NumPy pipeline never copies across a fake boundary."""
        if backend == "xp-cupy":
            pytest.skip("cuda path transfers by design")
        evaluator = make_backend_evaluator(problem, spec.domain, backend)
        rng = np.random.default_rng(94)
        pairs = rng.integers(0, evaluator.num_cells, size=(50, 2))
        evaluator.evaluate_swaps_batch(pairs)
        evaluator.commit_swap(int(pairs[0, 0]), int(pairs[0, 1]))
        stats = evaluator.transfer_stats()
        assert stats.total_bytes == 0
        assert stats.transfers_to_device == 0
        assert stats.transfers_to_host == 0
        assert stats.seconds == 0.0

    @pytest.mark.skipif(not cuda_available(), reason="cupy/CUDA device not available")
    def test_cuda_backend_counts_its_traffic(self, problem, spec):
        evaluator = make_backend_evaluator(problem, spec.domain, "xp-cupy")
        rng = np.random.default_rng(95)
        pairs = rng.integers(0, evaluator.num_cells, size=(50, 2))
        evaluator.evaluate_swaps_batch(pairs)
        stats = evaluator.transfer_stats()
        assert stats.bytes_to_device > 0
        assert stats.bytes_to_host > 0


class TestDiversificationHook:
    def test_distances_shape_and_sign(self, evaluator):
        candidates = np.arange(1, 9)
        distances = evaluator.diversification_distances(0, candidates)
        assert distances.shape == (8,)
        assert np.all(distances >= 0.0)

    def test_distance_to_self_is_zero(self, evaluator):
        assert evaluator.diversification_distances(5, np.array([5]))[0] == 0.0


class TestSeededTrajectoryIdentity:
    def _params(self) -> ParallelSearchParams:
        return ParallelSearchParams(
            num_tsws=2,
            clws_per_tsw=2,
            global_iterations=2,
            tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
            seed=77,
        )

    def test_serial_runs_are_identical(self, problem):
        def run():
            evaluator = problem.make_evaluator(problem.random_solution(seed=9))
            search = TabuSearch(
                evaluator,
                TabuSearchParams(pairs_per_step=4, move_depth=2),
                seed=5,
            )
            return search.run(TerminationCriteria(max_iterations=15))

        first, second = run(), run()
        assert first.trace == second.trace
        assert first.best_cost == second.best_cost
        assert np.array_equal(first.best_solution, second.best_solution)

    def test_simulated_parallel_runs_are_identical(self, problem):
        def run():
            return run_parallel_search(
                problem=problem, params=self._params(), backend="simulated"
            )

        first, second = run(), run()
        assert first.trace == second.trace
        assert first.best_cost == second.best_cost
        assert np.array_equal(first.best_solution, second.best_solution)
        assert first.best_cost < first.initial_cost

    def test_serial_and_parallel_share_the_protocol_not_the_stream(self, problem):
        """Workers own independent RNG streams by design (MPSS); the runs
        must nonetheless agree on the *instance*: same reference anchor,
        comparable costs, both improving from the same initial quality."""
        serial_eval = problem.make_evaluator(problem.random_solution(seed=9))
        serial = TabuSearch(
            serial_eval, TabuSearchParams(pairs_per_step=4, move_depth=2), seed=5
        ).run(TerminationCriteria(max_iterations=20))
        parallel = run_parallel_search(
            problem=problem, params=self._params(), backend="simulated"
        )
        assert serial.best_cost < 1.5
        assert parallel.best_cost < parallel.initial_cost
        assert parallel.best_cost == pytest.approx(serial.best_cost, abs=0.5)
