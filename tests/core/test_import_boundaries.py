"""Architectural boundary enforcement for the domain-agnostic core.

The engine layers — ``repro.tabu`` (serial search), ``repro.parallel``
(master/TSW/CLW protocol) and ``repro.session`` (resumable sessions, warm
pools, checkpoint state) — must be written against the :mod:`repro.core`
protocols only, never against a concrete problem domain.  This test parses
every module of those packages and fails on any import that resolves into
``repro.placement`` (or ``repro.problems.*``, which would be the same leak
through the new layering).

Two sanctioned exceptions keep legacy import paths alive:

* ``repro.parallel.problem`` — the deprecated shim re-exporting
  ``PlacementProblem`` from its new home in ``repro.problems.placement``;
* ``repro.parallel.__init__`` — a lazy ``__getattr__`` re-export of the
  same legacy name (``from repro.parallel import PlacementProblem``), so
  the domain module is only touched when the alias is actually used.

The accelerator dispatch layer (``repro.accel``) is engine code too — it
may not import problem domains (domain callables are passed *into* its
kernels) — and it is the **only** package in the whole tree allowed to
import ``cupy``: everything else goes through the ``ArrayBackend`` / probe
surface, which is what keeps the optional GPU dependency optional.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

import repro

SRC_ROOT = Path(repro.__file__).resolve().parent.parent  # .../src
ENGINE_PACKAGES = ("repro/tabu", "repro/parallel", "repro/session", "repro/accel")
#: Module prefixes the engine must not import (domain implementations).
FORBIDDEN_PREFIXES = ("repro.placement", "repro.problems")
#: The compatibility shims keep old import paths alive by design.
ALLOWED_SHIMS = {"repro/parallel/problem.py", "repro/parallel/__init__.py"}


def engine_modules():
    for package in ENGINE_PACKAGES:
        for path in sorted((SRC_ROOT / package).glob("*.py")):
            yield path


def resolved_imports(path: Path):
    """Absolute module names imported by ``path`` (relative imports resolved)."""
    tree = ast.parse(path.read_text(), filename=str(path))
    relative = path.relative_to(SRC_ROOT)
    package_parts = list(relative.parent.parts)  # e.g. ["repro", "tabu"]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                yield node.module or ""
                continue
            # level=1 is the containing package, each extra level goes up one
            base = package_parts[: len(package_parts) - (node.level - 1)]
            module = node.module.split(".") if node.module else []
            yield ".".join(base + module)


@pytest.mark.parametrize(
    "path", list(engine_modules()), ids=lambda p: str(p.relative_to(SRC_ROOT))
)
def test_engine_module_does_not_import_problem_domains(path):
    if str(path.relative_to(SRC_ROOT)) in ALLOWED_SHIMS:
        pytest.skip("sanctioned backwards-compatibility shim")
    offenders = [
        module
        for module in resolved_imports(path)
        if any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in FORBIDDEN_PREFIXES
        )
    ]
    assert not offenders, (
        f"{path.relative_to(SRC_ROOT)} imports problem-domain modules "
        f"{offenders}; engine code must depend on repro.core protocols only"
    )


def test_the_suite_actually_sees_the_engine_modules():
    """Guard against a silently-empty parametrisation (e.g. a moved tree)."""
    paths = list(engine_modules())
    names = {path.name for path in paths}
    assert {"search.py", "master.py", "tsw.py", "clw.py", "runner.py"} <= names
    # the session layer is part of the engine surface
    assert {"session.py", "state.py", "pool.py", "worker_loop.py"} <= names
    # the accelerator dispatch layer is engine code as well
    assert {"device.py", "backend.py", "kernels.py"} <= names
    assert len(paths) >= 22


def all_repro_modules():
    for path in sorted((SRC_ROOT / "repro").rglob("*.py")):
        yield path


@pytest.mark.parametrize(
    "path", list(all_repro_modules()), ids=lambda p: str(p.relative_to(SRC_ROOT))
)
def test_only_the_accel_layer_imports_cupy(path):
    """``cupy`` is quarantined behind :mod:`repro.accel`.

    Domain packages and engine layers reach the GPU only through the
    ``ArrayBackend`` surface; a direct ``import cupy`` anywhere else would
    make the optional dependency load-bearing (and unguarded — accel's own
    import sits in a try/except probe).
    """
    offenders = [
        module
        for module in resolved_imports(path)
        if module == "cupy" or module.startswith("cupy.")
    ]
    if str(path.relative_to(SRC_ROOT)).startswith("repro/accel/"):
        return  # the sanctioned (guarded) import site
    assert not offenders, (
        f"{path.relative_to(SRC_ROOT)} imports cupy directly {offenders}; "
        "only repro.accel may touch cupy — use an ArrayBackend"
    )


def test_cupy_quarantine_suite_sees_the_sanctioned_import():
    """The cupy scan must actually detect accel's guarded import site."""
    device = SRC_ROOT / "repro" / "accel" / "device.py"
    assert any(
        module == "cupy" or module.startswith("cupy.")
        for module in resolved_imports(device)
    )
