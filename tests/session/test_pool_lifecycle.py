"""Warm worker pools: persistent TSW/CLW loops serving consecutive runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import get_domain
from repro.errors import SessionError
from repro.parallel import ParallelSearchParams
from repro.session import SearchSession, WorkerPool, make_kernel
from repro.pvm import SimKernel, homogeneous_cluster
from repro.tabu import TabuSearchParams

NUM_TSWS = 2
CLWS_PER_TSW = 2


def quick_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=NUM_TSWS,
        clws_per_tsw=CLWS_PER_TSW,
        global_iterations=3,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=4, pairs_per_step=3, move_depth=2),
        seed=11,
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


@pytest.fixture(scope="module")
def problem():
    return get_domain("placement").build_problem("tiny16", reference_seed=7)


class TestMakeKernel:
    def test_simulated_kernel(self):
        assert isinstance(make_kernel("simulated", homogeneous_cluster(4)), SimKernel)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SessionError, match="backend"):
            make_kernel("quantum")


class TestWarmPool:
    def test_two_consecutive_runs_without_respawning(self, problem):
        params = quick_params()
        cold = SearchSession(problem=problem, params=params).run()
        with WorkerPool(
            NUM_TSWS, CLWS_PER_TSW, cluster=homogeneous_cluster(6)
        ) as pool:
            pids_before = pool.tsw_pids
            first = SearchSession(problem=problem, params=params, pool=pool).run()
            second = SearchSession(problem=problem, params=params, pool=pool).run()
            # the persistent loops survived both runs: same pids, no respawn
            assert pool.tsw_pids == pids_before
            assert pool.runs_served == 2
        # warm runs take the same decisions as a cold run
        for warm in (first, second):
            assert warm.best_cost == cold.best_cost
            assert np.array_equal(warm.best_solution, cold.best_solution)
            for ours, theirs in zip(warm.global_records, cold.global_records):
                assert ours.received_costs == theirs.received_costs

    def test_warm_resume_after_checkpoint(self, problem):
        params = quick_params()
        cold = SearchSession(problem=problem, params=params).run()
        with WorkerPool(
            NUM_TSWS, CLWS_PER_TSW, cluster=homogeneous_cluster(6)
        ) as pool:
            session = SearchSession(problem=problem, params=params, pool=pool)
            session.step(1)
            state = session.checkpoint()
            resumed = SearchSession.restore(state, pool=pool).run()
        assert resumed.best_cost == cold.best_cost
        assert np.array_equal(resumed.best_solution, cold.best_solution)

    def test_topology_mismatch_is_rejected(self, problem):
        with WorkerPool(
            NUM_TSWS, CLWS_PER_TSW, cluster=homogeneous_cluster(6)
        ) as pool:
            bad = quick_params(num_tsws=NUM_TSWS + 1)
            session = SearchSession(problem=problem, params=bad, pool=pool)
            with pytest.raises(SessionError, match="topology"):
                session.run()

    def test_closed_pool_refuses_runs(self, problem):
        pool = WorkerPool(NUM_TSWS, CLWS_PER_TSW, cluster=homogeneous_cluster(6))
        pool.close()
        assert pool.closed
        with pytest.raises(SessionError, match="closed"):
            pool.run_master(problem, quick_params())
        # closing twice is a no-op
        pool.close()

    def test_session_adopts_pool_backend(self, problem):
        with WorkerPool(
            NUM_TSWS, CLWS_PER_TSW, cluster=homogeneous_cluster(6)
        ) as pool:
            session = SearchSession(
                problem=problem, params=quick_params(), backend="threads", pool=pool
            )
            assert session.backend == pool.backend == "simulated"


class TestWarmPoolThreads:
    def test_threads_pool_serves_two_runs(self, problem):
        params = quick_params()
        cold = SearchSession(problem=problem, params=params).run()
        with WorkerPool(
            NUM_TSWS,
            CLWS_PER_TSW,
            backend="threads",
            cluster=homogeneous_cluster(6),
        ) as pool:
            pids_before = pool.tsw_pids
            first = SearchSession(problem=problem, params=params, pool=pool).run()
            second = SearchSession(problem=problem, params=params, pool=pool).run()
            assert pool.tsw_pids == pids_before
            assert pool.runs_served == 2
        # homogeneous sync: real-time scheduling must not change decisions
        for warm in (first, second):
            assert warm.best_cost == cold.best_cost
            assert np.array_equal(warm.best_solution, cold.best_solution)
