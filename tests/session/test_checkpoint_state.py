"""The checkpoint artifact: byte stability, codec validation, round trips."""

from __future__ import annotations

import pickle
import struct

import pytest

from repro.core.registry import get_domain
from repro.errors import SessionError
from repro.parallel import ParallelSearchParams
from repro.session import SCHEMA_VERSION, SearchSession, SessionState
from repro.session.state import MAGIC
from repro.tabu import TabuSearchParams


def quick_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=2,
        clws_per_tsw=1,
        global_iterations=3,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
        seed=11,
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


@pytest.fixture(scope="module")
def problem():
    return get_domain("placement").build_problem("tiny16", reference_seed=7)


@pytest.fixture(scope="module")
def paused_state(problem) -> SessionState:
    session = SearchSession(problem=problem, params=quick_params())
    session.step(1)
    return session.checkpoint()


class TestByteStability:
    def test_checkpointing_twice_produces_identical_bytes(self, problem):
        session = SearchSession(problem=problem, params=quick_params())
        session.step(1)
        assert session.checkpoint().to_bytes() == session.checkpoint().to_bytes()

    def test_bytes_roundtrip_preserves_the_state(self, paused_state):
        loaded = SessionState.from_bytes(paused_state.to_bytes())
        assert loaded.backend == paused_state.backend
        assert loaded.params == paused_state.params
        assert loaded.rounds_done == paused_state.rounds_done
        assert loaded.best_cost == paused_state.best_cost
        assert loaded.complete == paused_state.complete
        # the decoded state is itself byte-stable (fresh pickle memo tables
        # may shift bytes across a round trip, but never across two encodes)
        assert loaded.to_bytes() == loaded.to_bytes()

    def test_artifact_starts_with_magic_and_version(self, paused_state):
        blob = paused_state.to_bytes()
        assert blob[:4] == MAGIC
        (version,) = struct.unpack_from("<I", blob, 4)
        assert version == SCHEMA_VERSION


class TestCodecValidation:
    def test_rejects_truncated_blob(self):
        with pytest.raises(SessionError, match="truncated"):
            SessionState.from_bytes(b"RT")

    def test_rejects_wrong_magic(self, paused_state):
        blob = b"NOPE" + paused_state.to_bytes()[4:]
        with pytest.raises(SessionError, match="magic"):
            SessionState.from_bytes(blob)

    def test_rejects_future_schema_version(self, paused_state):
        payload = paused_state.to_bytes()[8:]
        blob = struct.pack("<4sI", MAGIC, SCHEMA_VERSION + 1) + payload
        with pytest.raises(SessionError, match="schema version"):
            SessionState.from_bytes(blob)

    def test_load_rejects_non_checkpoint_file(self, tmp_path):
        target = tmp_path / "junk.rtss"
        target.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(SessionError):
            SessionState.load(target)


class TestFileRoundTrip:
    def test_save_load_roundtrip(self, paused_state, tmp_path):
        target = paused_state.save(tmp_path / "runs" / "ckpt.rtss")
        assert target.exists()
        assert target.read_bytes() == paused_state.to_bytes()
        loaded = SessionState.load(target)
        assert loaded.rounds_done == paused_state.rounds_done
        assert loaded.best_cost == paused_state.best_cost

    def test_summary_properties(self, paused_state):
        assert paused_state.rounds_done == 1
        assert paused_state.best_cost is not None
        assert not paused_state.complete

    def test_fresh_session_checkpoints_before_any_epoch(self, problem):
        state = SearchSession(problem=problem, params=quick_params()).checkpoint()
        assert state.run_state is None
        assert state.rounds_done == 0
        assert state.best_cost is None
        restored = SearchSession.restore(state)
        result = restored.run()
        assert result.complete
