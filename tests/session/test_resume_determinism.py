"""Interrupted-checkpointed-restored trajectories match the uninterrupted run.

The PR 5 driver-identity suite proves the vectorized and reference iteration
drivers walk one trajectory; this suite is the equivalent oracle for the
session layer: a run interrupted at global iteration ``k``, checkpointed,
restored (from bytes or from disk) and continued must be **bit-identical** to
the run that never paused — same best cost, same best solution, same per-round
received costs — on both registered problem domains, serial and parallel,
including a tabu-heavy regime where the tabu list and frequency memory carry
most of the trajectory.

The guarantee holds under ``sync_mode="homogeneous"`` (timing-independent
decisions).  The paper's default ``"heterogeneous"`` mode decides interrupts
from virtual timing, so there a checkpoint/resume must merely *work* — the
smoke test below pins that — without the bit-identity claim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import get_domain
from repro.parallel import ParallelSearchParams
from repro.session import (
    SearchSession,
    SessionState,
    export_serial_state,
    restore_serial_search,
)
from repro.tabu import TabuSearch, TabuSearchParams, TerminationCriteria

ROUNDS = 4


def make_problem(domain: str):
    instance = {"placement": "tiny16", "qap": "rand32"}[domain]
    return get_domain(domain).build_problem(instance, reference_seed=7)


def quick_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=2,
        clws_per_tsw=2,
        global_iterations=ROUNDS,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=4, pairs_per_step=3, move_depth=2),
        seed=11,
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


def assert_bit_identical(resumed, baseline):
    assert resumed.best_cost == baseline.best_cost
    assert np.array_equal(resumed.best_solution, baseline.best_solution)
    assert len(resumed.global_records) == len(baseline.global_records)
    for ours, theirs in zip(resumed.global_records, baseline.global_records):
        assert ours.index == theirs.index
        assert ours.received_costs == theirs.received_costs
        assert ours.best_cost_after == theirs.best_cost_after


class TestParallelResume:
    @pytest.mark.parametrize("domain", ["placement", "qap"])
    @pytest.mark.parametrize("interrupt_after", [1, 2])
    def test_resumed_run_is_bit_identical(self, domain, interrupt_after):
        problem = make_problem(domain)
        params = quick_params()
        baseline = SearchSession(problem=problem, params=params).run()

        session = SearchSession(problem=problem, params=params)
        session.step(interrupt_after)
        assert not session.complete
        assert session.rounds_done == interrupt_after
        blob = session.checkpoint().to_bytes()

        restored = SearchSession.restore(SessionState.from_bytes(blob))
        result = restored.run()
        assert result.complete
        assert_bit_identical(result, baseline)

    def test_resume_from_disk_is_bit_identical(self, tmp_path):
        problem = make_problem("placement")
        params = quick_params()
        baseline = SearchSession(problem=problem, params=params).run()

        session = SearchSession(problem=problem, params=params)
        session.step(2)
        session.checkpoint(tmp_path / "ckpt.rtss")

        result = SearchSession.restore(tmp_path / "ckpt.rtss").run()
        assert_bit_identical(result, baseline)

    def test_tabu_heavy_regime_resumes_bit_identically(self):
        # a tiny tenure over a tiny candidate pool keeps the tabu list and
        # the frequency memory on the critical path of every decision
        problem = make_problem("placement")
        params = quick_params(
            tabu=TabuSearchParams(
                local_iterations=8,
                pairs_per_step=2,
                move_depth=1,
                tabu_tenure=2,
                early_accept=False,
            )
        )
        baseline = SearchSession(problem=problem, params=params).run()

        session = SearchSession(problem=problem, params=params)
        session.step(2)
        restored = SearchSession.restore(session.checkpoint())
        assert_bit_identical(restored.run(), baseline)

    def test_double_interrupt_still_matches(self):
        # pausing twice (k=1, then k=2) must compose: the second checkpoint
        # carries state already restored once
        problem = make_problem("qap")
        params = quick_params()
        baseline = SearchSession(problem=problem, params=params).run()

        session = SearchSession(problem=problem, params=params)
        session.step(1)
        second = SearchSession.restore(session.checkpoint())
        second.step(1)
        assert second.rounds_done == 2
        third = SearchSession.restore(second.checkpoint())
        assert_bit_identical(third.run(), baseline)

    def test_heterogeneous_checkpoint_resume_smoke(self):
        # the paper's timing-dependent sync mode: resume must complete and
        # improve, but carries no bit-identity guarantee
        problem = make_problem("placement")
        params = quick_params(sync_mode="heterogeneous")
        session = SearchSession(problem=problem, params=params)
        session.step(2)
        restored = SearchSession.restore(session.checkpoint())
        result = restored.run()
        assert result.complete
        assert result.best_cost < result.initial_cost
        assert len(result.global_records) == ROUNDS


class TestSerialResume:
    @pytest.mark.parametrize("domain", ["placement", "qap"])
    def test_serial_export_restore_is_bit_identical(self, domain):
        problem = make_problem(domain)
        tabu = TabuSearchParams(local_iterations=6, pairs_per_step=3, move_depth=2)

        def fresh_search() -> TabuSearch:
            evaluator = problem.make_evaluator(problem.random_solution(seed=3))
            return TabuSearch(evaluator, tabu, seed=5)

        full = fresh_search()
        full_result = full.run(TerminationCriteria(max_iterations=12))

        half = fresh_search()
        half.run(TerminationCriteria(max_iterations=6))
        state = export_serial_state(half)

        resumed = restore_serial_search(problem, tabu, state, seed=5)
        resumed_result = resumed.run(TerminationCriteria(max_iterations=12))

        assert resumed_result.iterations == full_result.iterations
        assert resumed_result.best_cost == full_result.best_cost
        assert np.array_equal(resumed_result.best_solution, full_result.best_solution)
        # the working solutions (not just the incumbents) must agree exactly
        assert np.array_equal(resumed.evaluator.snapshot(), full.evaluator.snapshot())
        assert resumed.evaluator.cost() == full.evaluator.cost()
        assert resumed_result.evaluations == full_result.evaluations

    def test_serial_resume_in_tabu_heavy_regime(self):
        problem = make_problem("placement")
        tabu = TabuSearchParams(
            local_iterations=10,
            pairs_per_step=2,
            move_depth=1,
            tabu_tenure=2,
            early_accept=False,
        )
        evaluator = problem.make_evaluator(problem.random_solution(seed=3))
        full = TabuSearch(evaluator, tabu, seed=5)
        full_result = full.run(TerminationCriteria(max_iterations=20))

        half = TabuSearch(
            problem.make_evaluator(problem.random_solution(seed=3)), tabu, seed=5
        )
        half.run(TerminationCriteria(max_iterations=10))
        resumed = restore_serial_search(problem, tabu, export_serial_state(half), seed=5)
        resumed_result = resumed.run(TerminationCriteria(max_iterations=20))

        assert resumed_result.best_cost == full_result.best_cost
        assert np.array_equal(resumed_result.best_solution, full_result.best_solution)
        assert np.array_equal(resumed.evaluator.snapshot(), full.evaluator.snapshot())
