"""The submit/status/cancel lifecycle of a :class:`SearchSession`."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.registry import get_domain
from repro.errors import SessionError
from repro.parallel import ParallelSearchParams
from repro.session import ProgressEvent, SearchSession
from repro.pvm import homogeneous_cluster
from repro.tabu import TabuSearchParams

ROUNDS = 4


def quick_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=2,
        clws_per_tsw=1,
        global_iterations=ROUNDS,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
        seed=11,
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


@pytest.fixture(scope="module")
def problem():
    return get_domain("placement").build_problem("tiny16", reference_seed=7)


def make_session(problem, **session_kwargs) -> SearchSession:
    return SearchSession(problem=problem, params=quick_params(), **session_kwargs)


class TestSynchronousLifecycle:
    def test_fresh_session_is_idle(self, problem):
        status = make_session(problem).status()
        assert status.state == "idle"
        assert status.rounds_done == 0
        assert status.total_rounds == ROUNDS
        assert status.best_cost is None
        assert status.progress == 0.0

    def test_step_pauses_at_the_iteration_boundary(self, problem):
        session = make_session(problem)
        status = session.step(2)
        assert status.state == "paused"
        assert status.rounds_done == 2
        assert status.progress == pytest.approx(0.5)
        assert status.best_cost is not None

    def test_stepping_to_the_end_completes(self, problem):
        session = make_session(problem)
        for _ in range(ROUNDS):
            status = session.step(1)
        assert status.state == "complete"
        assert session.complete
        assert session.result().complete

    def test_run_after_step_finishes_the_run(self, problem):
        baseline = make_session(problem).run()
        session = make_session(problem)
        session.step(1)
        result = session.run()
        assert result.complete
        assert result.best_cost == baseline.best_cost
        assert np.array_equal(result.best_solution, baseline.best_solution)

    def test_step_rejects_nonpositive_rounds(self, problem):
        with pytest.raises(SessionError, match="at least one round"):
            make_session(problem).step(0)

    def test_completed_session_rejects_further_epochs(self, problem):
        session = make_session(problem)
        session.run()
        # step() degrades to a status query once complete; submit() refuses
        assert session.step(1).state == "complete"
        with pytest.raises(SessionError, match="completion"):
            session.submit()

    def test_result_before_any_epoch_is_an_error(self, problem):
        with pytest.raises(SessionError, match="no epoch"):
            make_session(problem).result()

    def test_needs_an_instance(self):
        with pytest.raises(SessionError, match="instance"):
            SearchSession(params=quick_params())


class TestBackgroundLifecycle:
    def test_submit_streams_progress_events(self, problem):
        session = make_session(problem)
        events = []
        session.submit(chunk_rounds=1, on_event=events.append)
        result = session.result(timeout=60.0)
        assert result.complete
        assert session.status().state == "complete"
        assert len(events) == ROUNDS
        assert all(isinstance(event, ProgressEvent) for event in events)
        assert [event.rounds_done for event in events] == list(range(1, ROUNDS + 1))
        assert events[-1].complete
        assert not events[0].complete
        # best-so-far can only improve
        costs = [event.best_cost for event in events]
        assert costs == sorted(costs, reverse=True)

    def test_background_run_matches_foreground(self, problem):
        baseline = make_session(problem).run()
        session = make_session(problem)
        session.submit(chunk_rounds=2)
        result = session.result(timeout=60.0)
        assert result.best_cost == baseline.best_cost
        assert np.array_equal(result.best_solution, baseline.best_solution)

    def test_cancel_from_the_event_callback_pauses(self, problem):
        session = make_session(problem)

        def stop_after_first(event: ProgressEvent) -> None:
            session.cancel()

        session.submit(chunk_rounds=1, on_event=stop_after_first)
        result = session.result(timeout=60.0)
        assert not result.complete
        assert session.status().state == "cancelled"
        assert session.rounds_done == 1
        # a cancelled session resumes from where it paused
        resumed = SearchSession.restore(session.checkpoint())
        final = resumed.run()
        assert final.complete
        baseline = make_session(problem).run()
        assert final.best_cost == baseline.best_cost

    def test_submit_while_running_is_rejected(self, problem):
        session = make_session(problem)
        gate = threading.Event()

        def hold(event: ProgressEvent) -> None:
            gate.wait(30.0)

        session.submit(chunk_rounds=1, on_event=hold)
        try:
            with pytest.raises(SessionError, match="background"):
                session.submit()
        finally:
            session.cancel()
            gate.set()
        session.result(timeout=60.0)

    def test_callback_errors_surface_in_result(self, problem):
        session = make_session(problem)

        def boom(event: ProgressEvent) -> None:
            raise RuntimeError("observer crashed")

        session.submit(chunk_rounds=1, on_event=boom)
        with pytest.raises(RuntimeError, match="observer crashed"):
            session.result(timeout=60.0)
        assert session.status().state == "failed"


class TestRealBackendLifecycle:
    def test_threads_submit_cancel_resume(self, problem):
        baseline = make_session(problem).run()
        session = make_session(
            problem, backend="threads", cluster=homogeneous_cluster(4)
        )

        def stop_after_first(event: ProgressEvent) -> None:
            session.cancel()

        session.submit(chunk_rounds=1, on_event=stop_after_first)
        partial = session.result(timeout=120.0)
        assert not partial.complete
        assert session.rounds_done < ROUNDS
        # resume on the simulated backend: checkpoints are backend-portable
        resumed = SearchSession.restore(session.checkpoint(), backend="simulated")
        final = resumed.run()
        assert final.complete
        assert final.best_cost == baseline.best_cost
        assert np.array_equal(final.best_solution, baseline.best_solution)

    def test_context_manager_closes_background_work(self, problem):
        with make_session(problem) as session:
            session.submit(chunk_rounds=1)
        assert session.status().state in ("cancelled", "complete", "paused")
