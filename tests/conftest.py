"""Shared pytest fixtures.

The fixtures centre on a handful of circuits of increasing size so that most
tests run on something tiny (fast) while a few integration tests exercise the
paper's benchmark circuits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.placement import (
    CostEvaluator,
    Layout,
    build_chain_netlist,
    load_benchmark,
    random_placement,
)


@pytest.fixture
def chain_netlist():
    """A 8-cell chain circuit (1 PI, 6 gates, 1 PO)."""
    return build_chain_netlist()


@pytest.fixture
def tiny_netlist():
    """The deterministic 16-cell generated circuit."""
    return load_benchmark("tiny16")


@pytest.fixture
def mini_netlist():
    """The deterministic 64-cell generated circuit."""
    return load_benchmark("mini64")


@pytest.fixture
def small_netlist():
    """The deterministic 200-cell generated circuit."""
    return load_benchmark("small200")


@pytest.fixture
def highway_netlist():
    """The smallest paper circuit (56 cells)."""
    return load_benchmark("highway")


@pytest.fixture
def mini_layout(mini_netlist):
    """Layout for the 64-cell circuit."""
    return Layout(mini_netlist)


@pytest.fixture
def mini_placement(mini_layout):
    """Deterministic random placement of the 64-cell circuit."""
    return random_placement(mini_layout, seed=42)


@pytest.fixture
def mini_evaluator(mini_placement):
    """Cost evaluator bound to the 64-cell placement."""
    return CostEvaluator(mini_placement)


@pytest.fixture
def rng():
    """A deterministic NumPy generator for test-local sampling."""
    return np.random.default_rng(12345)
