"""Shared pytest fixtures.

The fixtures centre on a handful of circuits of increasing size so that most
tests run on something tiny (fast) while a few integration tests exercise the
paper's benchmark circuits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.placement import (
    CellKind,
    CostEvaluator,
    Layout,
    NetlistBuilder,
    load_benchmark,
    random_placement,
)


def build_chain_netlist(num_gates: int = 6, name: str = "chain"):
    """A simple PI -> g0 -> g1 -> ... -> PO chain with one side branch per gate.

    Handy for tests because the critical path and wirelength are easy to
    reason about by hand.
    """
    builder = NetlistBuilder(name)
    builder.add_cell("pi0", kind=CellKind.PRIMARY_INPUT, delay=0.0, width=1.0)
    previous = "pi0"
    for index in range(num_gates):
        gate = f"g{index}"
        builder.add_cell(gate, delay=1.0, width=1.0 + 0.1 * index)
        builder.add_net(f"n{index}", driver=previous, sinks=[gate])
        previous = gate
    builder.add_cell("po0", kind=CellKind.PRIMARY_OUTPUT, delay=0.0, width=1.0)
    builder.add_net("n_out", driver=previous, sinks=["po0"])
    return builder.build()


@pytest.fixture
def chain_netlist():
    """A 8-cell chain circuit (1 PI, 6 gates, 1 PO)."""
    return build_chain_netlist()


@pytest.fixture
def tiny_netlist():
    """The deterministic 16-cell generated circuit."""
    return load_benchmark("tiny16")


@pytest.fixture
def mini_netlist():
    """The deterministic 64-cell generated circuit."""
    return load_benchmark("mini64")


@pytest.fixture
def small_netlist():
    """The deterministic 200-cell generated circuit."""
    return load_benchmark("small200")


@pytest.fixture
def highway_netlist():
    """The smallest paper circuit (56 cells)."""
    return load_benchmark("highway")


@pytest.fixture
def mini_layout(mini_netlist):
    """Layout for the 64-cell circuit."""
    return Layout(mini_netlist)


@pytest.fixture
def mini_placement(mini_layout):
    """Deterministic random placement of the 64-cell circuit."""
    return random_placement(mini_layout, seed=42)


@pytest.fixture
def mini_evaluator(mini_placement):
    """Cost evaluator bound to the 64-cell placement."""
    return CostEvaluator(mini_placement)


@pytest.fixture
def rng():
    """A deterministic NumPy generator for test-local sampling."""
    return np.random.default_rng(12345)
