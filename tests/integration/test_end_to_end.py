"""Integration tests spanning the whole stack on the paper's smallest circuit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import ParallelSearchParams, build_problem, run_parallel_search
from repro.placement import CostEvaluator, Layout, load_benchmark, random_placement
from repro.pvm import paper_cluster
from repro.tabu import TabuSearch, TabuSearchParams, TerminationCriteria


@pytest.fixture(scope="module")
def highway():
    return load_benchmark("highway")


class TestSerialVsParallelConsistency:
    def test_parallel_with_one_worker_behaves_like_serial_search(self, highway):
        """A 1-TSW / 1-CLW parallel run and a serial run use the same move
        machinery; both must improve the same initial solution substantially."""
        params = ParallelSearchParams(
            num_tsws=1,
            clws_per_tsw=1,
            global_iterations=2,
            diversify=False,
            tabu=TabuSearchParams(local_iterations=10, pairs_per_step=4, move_depth=2),
            seed=5,
        )
        parallel = run_parallel_search(highway, params)

        layout = Layout(highway)
        evaluator = CostEvaluator(random_placement(layout, seed=5))
        serial = TabuSearch(
            evaluator, TabuSearchParams(pairs_per_step=4, move_depth=2), seed=5
        ).run(TerminationCriteria(max_iterations=20))

        assert parallel.best_cost < parallel.initial_cost * 0.95
        assert serial.best_cost < parallel.initial_cost  # same ballpark of effort
        # both land in a comparable quality band
        assert abs(parallel.best_cost - serial.best_cost) < 0.25

    def test_more_workers_do_not_hurt_quality(self, highway):
        """More TSWs with the same per-worker effort should not end up clearly
        worse than a single TSW (the paper's central claim, Figure 7)."""
        shared = dict(
            clws_per_tsw=1,
            global_iterations=3,
            tabu=TabuSearchParams(local_iterations=5, pairs_per_step=4, move_depth=2),
            seed=9,
        )
        problem = build_problem(highway, ParallelSearchParams(num_tsws=1, **shared))
        single = run_parallel_search(
            highway, ParallelSearchParams(num_tsws=1, **shared), problem=problem
        )
        quad = run_parallel_search(
            highway, ParallelSearchParams(num_tsws=4, **shared), problem=problem
        )
        assert quad.best_cost <= single.best_cost + 0.05


class TestPaperClusterEndToEnd:
    def test_full_paper_configuration_runs_clean(self, highway):
        """4 TSWs x 4 CLWs on the 12-machine cluster — the Figure 11 setup."""
        params = ParallelSearchParams(
            num_tsws=4,
            clws_per_tsw=4,
            global_iterations=2,
            tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
            seed=2,
        )
        result = run_parallel_search(highway, params, cluster=paper_cluster())
        assert result.sim_stats.num_processes == 1 + 4 + 16
        assert result.best_cost < result.initial_cost
        # every process finished (the kernel would have raised on deadlock)
        assert all(info.finished_at is not None for info in result.process_infos)
        # work happened on more than one machine
        busy = result.sim_stats.per_machine_busy
        assert sum(1 for b in busy if b > 0) >= 8

    def test_objectives_are_internally_consistent(self, highway):
        params = ParallelSearchParams(
            num_tsws=2,
            clws_per_tsw=2,
            global_iterations=2,
            tabu=TabuSearchParams(local_iterations=4, pairs_per_step=4, move_depth=2),
            seed=3,
        )
        problem = build_problem(highway, params)
        result = run_parallel_search(highway, params, problem=problem)
        evaluator = problem.make_evaluator(result.best_solution)
        objectives = evaluator.objectives()
        assert objectives.wirelength == pytest.approx(result.best_objectives.wirelength)
        assert objectives.area == pytest.approx(result.best_objectives.area)
        assert result.best_objectives.wirelength > 0
        assert result.best_objectives.delay > 0
        assert result.best_objectives.area > 0


class TestReproducibilityAcrossRuns:
    def test_identical_runs_bitwise_identical(self, highway):
        params = ParallelSearchParams(
            num_tsws=3,
            clws_per_tsw=2,
            global_iterations=2,
            tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
            seed=42,
        )
        a = run_parallel_search(highway, params)
        b = run_parallel_search(highway, params)
        assert np.array_equal(a.best_solution, b.best_solution)
        assert a.best_cost == b.best_cost
        assert a.trace == b.trace
        assert a.sim_stats.total_messages == b.sim_stats.total_messages
        assert a.sim_stats.total_events == b.sim_stats.total_events
