"""Property-based tests of cross-module invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.placement import CostEvaluator, Layout, load_benchmark, random_placement
from repro.placement.area import full_area
from repro.placement.wirelength import full_hpwl
from repro.tabu import TabuSearch, TabuSearchParams, TerminationCriteria, full_range
from repro.tabu.moves import build_compound_move


def fresh_evaluator(seed: int) -> CostEvaluator:
    layout = Layout(load_benchmark("highway"))
    return CostEvaluator(random_placement(layout, seed=seed))


class TestEvaluatorInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 100),
        swaps=st.lists(st.tuples(st.integers(0, 55), st.integers(0, 55)), max_size=15),
    )
    def test_caches_never_drift(self, seed, swaps):
        evaluator = fresh_evaluator(seed)
        for a, b in swaps:
            evaluator.commit_swap(a, b)
        evaluator.verify_consistency()
        _, wirelength = full_hpwl(evaluator.placement)
        assert evaluator.objectives().wirelength == pytest.approx(wirelength)
        assert evaluator.objectives().area == pytest.approx(full_area(evaluator.placement))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100), a=st.integers(0, 55), b=st.integers(0, 55))
    def test_trial_then_commit_agree(self, seed, a, b):
        evaluator = fresh_evaluator(seed)
        predicted = evaluator.evaluate_swap(a, b)
        actual = evaluator.commit_swap(a, b)
        assert actual == pytest.approx(predicted, rel=1e-9, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_cost_bounded_in_unit_interval(self, seed):
        evaluator = fresh_evaluator(seed)
        assert 0.0 <= evaluator.cost() <= 1.0


class TestCompoundMoveInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 50),
        pairs=st.integers(1, 6),
        depth=st.integers(1, 4),
        early=st.booleans(),
    )
    def test_compound_move_leaves_consistent_state(self, seed, pairs, depth, early):
        evaluator = fresh_evaluator(seed)
        rng = np.random.default_rng(seed)
        move = build_compound_move(
            evaluator,
            full_range(evaluator.placement.num_cells),
            pairs_per_step=pairs,
            depth=depth,
            rng=rng,
            early_accept=early,
        )
        evaluator.verify_consistency()
        assert 1 <= move.depth <= depth
        assert move.trials <= pairs * depth
        assert move.cost_after == pytest.approx(evaluator.cost())


class TestSearchInvariants:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 30), iterations=st.integers(1, 12))
    def test_best_cost_never_worse_than_initial(self, seed, iterations):
        evaluator = fresh_evaluator(seed)
        initial = evaluator.cost()
        search = TabuSearch(
            evaluator,
            TabuSearchParams(pairs_per_step=3, move_depth=2),
            seed=seed,
        )
        result = search.run(TerminationCriteria(max_iterations=iterations))
        assert result.best_cost <= initial + 1e-12
        assert result.iterations == iterations
        # The stored best solution evaluates close to the stored best cost.
        # A small tolerance is expected: during the search the timing term is
        # a path-based surrogate that is refreshed only every few commits,
        # while the replay below runs an exact analysis immediately.
        replay = fresh_evaluator(seed)
        replay.install_solution(result.best_solution)
        assert replay.cost() == pytest.approx(result.best_cost, abs=0.05)
