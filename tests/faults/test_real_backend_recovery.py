"""Real-backend fault tolerance: OS-level deaths, repair, mid-run cancel.

On the processes backend deaths are *real*: ``terminate_worker`` sends
SIGTERM, the kernel's monitor thread notices the exit and posts a
``WORKER_DOWN`` obituary to the registered death listener, and the
fault-tolerant master completes the run degraded.  (Process bodies live at
module level because the spawn context ships them by pickled reference.)
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ProcessError
from repro.parallel import FaultPolicy, ParallelSearchParams
from repro.pvm import ProcessKernel, ThreadKernel, homogeneous_cluster
from repro.pvm.faults import WORKER_DOWN_TAG
from repro.session import SearchSession, WorkerPool
from repro.tabu import TabuSearchParams


# --------------------------------------------------------------------------- #
# process bodies
# --------------------------------------------------------------------------- #
def sleeping_proc(ctx, seconds):
    yield ctx.sleep(seconds)
    return "slept"


def obituary_listener(ctx):
    notice = yield ctx.recv_timeout(30.0, tag=WORKER_DOWN_TAG)
    if notice is None:
        return None
    return (notice.payload.name, notice.payload.reason)


def crashing_proc(ctx):
    yield ctx.compute(1.0)
    raise RuntimeError("synthetic crash")


# --------------------------------------------------------------------------- #
# kernel-level death detection
# --------------------------------------------------------------------------- #
class TestProcessKernelDeaths:
    def test_terminated_worker_is_detected_and_announced(self):
        with ProcessKernel(homogeneous_cluster(4)) as kernel:
            kernel.death_report_grace = 0.5
            kernel.death_notify_grace = 0.3
            listener = kernel.spawn(obituary_listener, name="listener")
            kernel.notify_deaths_to(listener)
            victim = kernel.spawn(sleeping_proc, 60.0, name="victim")
            time.sleep(0.3)  # let the victim start sleeping
            assert kernel.terminate_worker(victim)
            kernel.join(listener, timeout=30.0)
            name, reason = kernel.result_of(listener)
            assert name == "victim"
            assert "exit" in reason or "died" in reason
            assert kernel.worker_dead(victim)
            # the victim's record can be finalized without wedging a join
            deadline = time.monotonic() + 10.0
            while not kernel.reap_worker(victim):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            with pytest.raises(ProcessError):
                kernel.result_of(victim)

    def test_terminate_unknown_or_finished_worker_is_false(self):
        with ProcessKernel(homogeneous_cluster(2)) as kernel:
            pid = kernel.spawn(sleeping_proc, 0.0, name="quick")
            kernel.join(pid, timeout=30.0)
            assert not kernel.terminate_worker(pid)


class TestThreadKernelDeaths:
    def test_crash_is_announced_to_the_death_listener(self):
        kernel = ThreadKernel(homogeneous_cluster(4))
        listener = kernel.spawn(obituary_listener, name="listener")
        kernel.notify_deaths_to(listener)
        kernel.spawn(crashing_proc, name="crasher")
        kernel.join(listener, timeout=30.0)
        name, reason = kernel.result_of(listener)
        assert name == "crasher"
        assert "crash" in reason


# --------------------------------------------------------------------------- #
# full-stack recovery on the processes backend
# --------------------------------------------------------------------------- #
NUM_TSWS = 3


def pool_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=NUM_TSWS,
        clws_per_tsw=1,
        global_iterations=6,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=40),
        seed=11,
        fault=FaultPolicy(
            round_deadline=3.0, clw_deadline=2.0, max_missed_deadlines=0
        ),
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


class TestProcessesPoolRecovery:
    def test_mid_run_kill_completes_degraded_then_repairs(self, problem):
        with WorkerPool(NUM_TSWS, 1, backend="processes") as pool:
            pool.kernel.death_report_grace = 0.5
            pool.kernel.death_notify_grace = 0.3
            victim = pool.tsw_pids[1]
            killed = []
            killer = threading.Timer(
                1.0, lambda: killed.append(pool.kernel.terminate_worker(victim))
            )
            killer.start()
            try:
                result, _, _ = pool.run_master(
                    problem, pool_params(), join_timeout=120.0
                )
            finally:
                killer.cancel()
            assert killed == [True]
            assert result.complete
            assert result.dead_workers == ("tsw1",)
            kinds = [e.kind for e in result.fault_events]
            assert "worker-dead" in kinds
            assert "range-reassigned" in kinds

            # the pool notices the dead loop, respawns it in-slot, and the
            # next fault-enabled run starts from full strength again
            assert pool.worker_dead(1)
            second, _, _ = pool.run_master(
                problem,
                pool_params(
                    global_iterations=2, tabu=TabuSearchParams(local_iterations=3)
                ),
                join_timeout=120.0,
            )
            assert second.complete
            assert second.dead_workers == ()
            respawns = [
                e for e in second.fault_events if e.kind == "worker-respawned"
            ]
            assert [e.worker for e in respawns] == ["tsw1"]
        # context exit: close() succeeded — the dead loop's records were
        # reaped, so join_all did not wedge on them


class TestProcessesCancelMidRound:
    def test_cancel_delivered_mid_round_pauses_at_the_boundary(self, problem):
        params = ParallelSearchParams(
            num_tsws=2,
            clws_per_tsw=1,
            global_iterations=60,
            sync_mode="homogeneous",
            tabu=TabuSearchParams(local_iterations=40),
            seed=11,
        )
        session = SearchSession(
            problem=problem, params=params, backend="processes", join_timeout=120.0
        )
        session.submit()
        time.sleep(1.5)  # let the run get well into a round
        session.cancel()  # posted straight into the running master's mailbox
        result = session.result(timeout=120.0)
        assert not result.complete
        status = session.status()
        assert status.state == "cancelled"
        # the cancel landed mid-run: before the end, after a clean boundary
        assert 0 < status.rounds_done < params.global_iterations
        # and the paused state resumes on the simulated backend
        resumed = SearchSession.restore(
            session.checkpoint(), problem=problem, backend="simulated"
        ).run()
        assert resumed.complete
