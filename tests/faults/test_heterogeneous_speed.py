"""Device-speed heterogeneity: speed hints, budgets and range convergence.

A GPU-backed worker evaluates 10–50× more swaps per second than its CPU
peers.  Without declared speed hints the health ledger reads that skew as
pathology — every CPU worker trips the limplock detector and has its
iteration budget strangled to the floor.  With hints, limplock detection
and budget shrinking compare *hint-normalised* rates (slow for its device
class, not slow absolutely), while re-partitioning keeps using raw observed
throughput — which is exactly what makes the fast device absorb more cells
without starving anyone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_domain
from repro.errors import ParallelSearchError
from repro.parallel import (
    FaultPolicy,
    HealthLedger,
    ParallelSearchParams,
    run_parallel_search,
)
from repro.tabu import TabuSearchParams
from repro.tabu.candidate import partition_cells_weighted

POLICY = FaultPolicy(
    round_deadline=10.0,
    clw_deadline=5.0,
    max_missed_deadlines=1,
    limplock_ratio=0.25,
    limplock_rounds=2,
    min_iteration_share=0.25,
    throughput_smoothing=0.5,
)


def feed_rounds(ledger: HealthLedger, rates: dict, rounds: int) -> None:
    """Report ``rounds`` rounds of steady per-second rates for each worker."""
    for round_index in range(1, rounds + 1):
        for key, rate in rates.items():
            ledger.record_report(key, evaluations_total=int(rate * round_index), elapsed=1.0)


class TestSpeedHints:
    def test_hint_must_be_positive_finite(self):
        ledger = HealthLedger(POLICY, [0])
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                ledger.set_speed_hint(0, bad)

    def test_unhinted_skew_limplocks_every_cpu_worker(self):
        """The baseline failure mode: a 40x device next to 1x devices."""
        ledger = HealthLedger(POLICY, [0, 1, 2])
        feed_rounds(ledger, {0: 40_000.0, 1: 1_000.0, 2: 1_000.0}, rounds=3)
        assert ledger.limplocked_keys() == [1, 2]
        # budgets strangled to the floor even though nothing is wrong
        assert ledger.iteration_budget(1, 100) == 25

    def test_hinted_skew_keeps_cpu_workers_healthy(self):
        """Same observations, hints declaring the device classes: no
        limplock, full budgets — behaviour matches a homogeneous cluster."""
        ledger = HealthLedger(
            POLICY, [0, 1, 2], speed_hints={0: 40.0, 1: 1.0, 2: 1.0}
        )
        feed_rounds(ledger, {0: 40_000.0, 1: 1_000.0, 2: 1_000.0}, rounds=5)
        assert ledger.limplocked_keys() == []
        for key in (0, 1, 2):
            assert ledger.iteration_budget(key, 100) == 100

    @pytest.mark.parametrize("skew", [10.0, 50.0])
    def test_hints_cover_the_paper_relevant_skew_range(self, skew):
        ledger = HealthLedger(POLICY, [0, 1], speed_hints={0: skew, 1: 1.0})
        feed_rounds(ledger, {0: 1_000.0 * skew, 1: 1_000.0}, rounds=4)
        assert ledger.limplocked_keys() == []

    def test_throttled_below_its_class_still_limplocks(self):
        """Hints must not mask genuine degradation: a CPU worker running at
        a tenth of what a CPU should do gets caught exactly as before."""
        ledger = HealthLedger(
            POLICY, [0, 1, 2], speed_hints={0: 40.0, 1: 1.0, 2: 1.0}
        )
        feed_rounds(ledger, {0: 40_000.0, 1: 1_000.0, 2: 100.0}, rounds=3)
        assert ledger.limplocked_keys() == [2]
        # the shrunk budget scales by the *normalised* ratio (100/1000),
        # floored at min_iteration_share
        assert ledger.iteration_budget(2, 100) == 25

    def test_hints_do_not_change_raw_partition_weights(self):
        """Re-partitioning splits by real throughput — that is the point."""
        ledger = HealthLedger(POLICY, [0, 1], speed_hints={0: 40.0, 1: 1.0})
        feed_rounds(ledger, {0: 40_000.0, 1: 1_000.0}, rounds=2)
        assert ledger.throughput_weights([0, 1]) == pytest.approx(
            [40_000.0, 1_000.0]
        )

    def test_unknown_keys_in_hints_are_ignored(self):
        ledger = HealthLedger(POLICY, [0, 1], speed_hints={0: 2.0, 9: 3.0})
        feed_rounds(ledger, {0: 2_000.0, 1: 1_000.0}, rounds=3)
        assert ledger.limplocked_keys() == []


class TestMixedSpeedRangeConvergence:
    """Throughput-weighted partitioning over a simulated mixed-speed cluster."""

    SPEEDS = {0: 40.0, 1: 1.0, 2: 1.0}  # one GPU-class worker, two CPU-class
    NUM_CELLS = 1000

    def test_partition_converges_to_speed_ratio_without_starvation(self):
        """Iterate report → re-partition: range sizes stabilise proportional
        to real throughput and every CPU worker keeps a working range."""
        ledger = HealthLedger(POLICY, [0, 1, 2], speed_hints=self.SPEEDS)
        sizes_per_round = []
        totals = {key: 0.0 for key in self.SPEEDS}
        for _ in range(6):
            # each worker's evaluation rate tracks its device speed,
            # independent of its range size (candidate sampling is
            # range-bound but fixed-cost per trial)
            for key, speed in self.SPEEDS.items():
                totals[key] += 1_000.0 * speed
                ledger.record_report(key, evaluations_total=int(totals[key]), elapsed=1.0)
            weights = ledger.throughput_weights(ledger.alive_keys())
            assert weights is not None
            ranges = partition_cells_weighted(self.NUM_CELLS, weights)
            sizes_per_round.append([len(r.cells) for r in ranges])
        final = sizes_per_round[-1]
        # converged: the last two rounds agree exactly
        assert sizes_per_round[-2] == final
        # proportional to speed (40:1:1 over 1000 cells => ~952/24/24)
        expected = self.NUM_CELLS * 40.0 / 42.0
        assert final[0] == pytest.approx(expected, abs=2)
        # and nobody is starved: every worker keeps a non-empty range
        assert all(size >= 1 for size in final)
        assert ledger.limplocked_keys() == []

    def test_even_extreme_skew_never_empties_a_range(self):
        ranges = partition_cells_weighted(100, [5_000.0, 1.0, 1.0])
        assert all(len(r.cells) >= 1 for r in ranges)
        assert sum(len(r.cells) for r in ranges) == 100


class TestParamsPlumbing:
    def test_hints_length_must_match_num_tsws(self):
        with pytest.raises(ParallelSearchError, match="one entry per TSW"):
            ParallelSearchParams(num_tsws=3, worker_speed_hints=(1.0, 2.0))

    def test_hints_must_be_positive_finite(self):
        for bad in (0.0, -2.0, float("inf"), float("nan")):
            with pytest.raises(ParallelSearchError, match="positive finite"):
                ParallelSearchParams(num_tsws=2, worker_speed_hints=(1.0, bad))

    def test_hints_are_normalised_to_floats(self):
        params = ParallelSearchParams(num_tsws=2, worker_speed_hints=(4, 1))
        assert params.worker_speed_hints == (4.0, 1.0)

    def test_hinted_fault_tolerant_run_completes_deterministically(self):
        """End-to-end wiring: the master builds its ledger from the params'
        hints; a hinted run on the simulated backend stays bit-deterministic
        and improves like an unhinted one."""
        problem = get_domain("qap").build_problem("rand32", reference_seed=0)

        def run(hints):
            return run_parallel_search(
                problem=problem,
                params=ParallelSearchParams(
                    num_tsws=2,
                    clws_per_tsw=1,
                    global_iterations=2,
                    tabu=TabuSearchParams(
                        local_iterations=3, pairs_per_step=3, move_depth=2
                    ),
                    seed=77,
                    fault=POLICY,
                    worker_speed_hints=hints,
                ),
                backend="simulated",
            )

        hinted = run((8.0, 1.0))
        again = run((8.0, 1.0))
        assert hinted.trace == again.trace
        assert hinted.best_cost == again.best_cost
        assert hinted.best_cost < hinted.initial_cost
        # hints only feed health accounting — with no faults injected the
        # search trajectory is identical to the unhinted run
        unhinted = run(None)
        assert hinted.trace == unhinted.trace
        assert np.array_equal(hinted.best_solution, unhinted.best_solution)
