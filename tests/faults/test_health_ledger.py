"""Master-side health ledger: strikes, throughput EWMA, limplock budgets."""

from __future__ import annotations

import pytest

from repro.parallel import FaultPolicy, HealthLedger


def make_ledger(**policy_overrides) -> HealthLedger:
    defaults = dict(
        round_deadline=10.0,
        clw_deadline=5.0,
        max_missed_deadlines=1,
        limplock_ratio=0.25,
        limplock_rounds=2,
        min_iteration_share=0.25,
        throughput_smoothing=0.5,
    )
    defaults.update(policy_overrides)
    return HealthLedger(FaultPolicy(**defaults), [0, 1, 2])


class TestLiveness:
    def test_strike_out_after_allowed_misses(self):
        ledger = make_ledger(max_missed_deadlines=1)
        assert not ledger.register_miss(0)  # first miss is forgiven
        assert ledger.register_miss(0)  # second one strikes out

    def test_report_clears_the_strike_counter(self):
        ledger = make_ledger(max_missed_deadlines=1)
        assert not ledger.register_miss(0)
        ledger.record_report(0, evaluations_total=100, elapsed=1.0)
        assert not ledger.register_miss(0)  # counter restarted

    def test_mark_dead_updates_key_sets(self):
        ledger = make_ledger()
        ledger.mark_dead(1)
        assert ledger.alive_keys() == [0, 2]
        assert ledger.dead_keys() == [1]
        assert not ledger.is_alive(1)


class TestThroughput:
    def test_rates_are_cumulative_count_differences(self):
        ledger = make_ledger()
        ledger.record_report(0, evaluations_total=100, elapsed=1.0)
        assert ledger.rate_of(0) == pytest.approx(100.0)
        # cumulative count: the second report adds 50 evals in 1 s
        ledger.record_report(0, evaluations_total=150, elapsed=1.0)
        assert ledger.rate_of(0) == pytest.approx(0.5 * 50 + 0.5 * 100)

    def test_weights_require_full_observations(self):
        ledger = make_ledger()
        ledger.record_report(0, evaluations_total=100, elapsed=1.0)
        assert ledger.throughput_weights([0, 1]) is None
        ledger.record_report(1, evaluations_total=300, elapsed=1.0)
        assert ledger.throughput_weights([0, 1]) == pytest.approx([100.0, 300.0])


class TestLimplock:
    def _feed_rounds(self, ledger, rounds, slow_key=2, slow_total=0):
        fast_total = {0: 0, 1: 0}
        for _ in range(rounds):
            for key in (0, 1):
                fast_total[key] += 1000
                ledger.record_report(key, evaluations_total=fast_total[key], elapsed=1.0)
            slow_total += 100
            ledger.record_report(slow_key, evaluations_total=slow_total, elapsed=1.0)
        return ledger

    def test_persistent_slowness_limplocks(self):
        ledger = self._feed_rounds(make_ledger(limplock_rounds=2), rounds=1)
        assert ledger.limplocked_keys() == []
        self._feed_rounds(ledger, rounds=1, slow_total=100)
        assert ledger.limplocked_keys() == [2]

    def test_limplocked_budget_shrinks_with_floor(self):
        ledger = self._feed_rounds(make_ledger(), rounds=3)
        assert ledger.iteration_budget(0, 100) == 100  # healthy: full budget
        budget = ledger.iteration_budget(2, 100)
        assert budget < 100
        assert budget >= 25  # min_iteration_share floor

    def test_dead_workers_never_report_limplocked(self):
        ledger = self._feed_rounds(make_ledger(), rounds=3)
        ledger.mark_dead(2)
        assert ledger.limplocked_keys() == []


class TestCheckpointing:
    def test_export_install_round_trip(self):
        ledger = make_ledger()
        ledger.record_report(0, evaluations_total=500, elapsed=1.0)
        ledger.register_miss(1)
        ledger.mark_dead(2)
        state = ledger.export_state()

        fresh = make_ledger()
        fresh.install_state(state, revive=False)
        assert fresh.rate_of(0) == pytest.approx(500.0)
        assert fresh.dead_keys() == [2]
        assert fresh.export_state() == state

    def test_revive_resets_liveness_but_keeps_history(self):
        ledger = make_ledger()
        ledger.record_report(0, evaluations_total=500, elapsed=1.0)
        ledger.mark_dead(2)
        fresh = make_ledger()
        fresh.install_state(ledger.export_state(), revive=True)
        assert fresh.alive_keys() == [0, 1, 2]
        assert fresh.rate_of(0) == pytest.approx(500.0)


class TestElasticity:
    def test_drained_is_not_dead(self):
        ledger = make_ledger()
        ledger.mark_drained(1)
        assert ledger.alive_keys() == [0, 2]
        assert ledger.dead_keys() == []
        assert ledger.drained_keys() == [1]

    def test_add_worker_registers_and_hints(self):
        ledger = make_ledger()
        ledger.add_worker(3, speed_hint=4.0)
        assert ledger.alive_keys() == [0, 1, 2, 3]
        assert ledger.export_hints() == {3: 4.0}
        # no-op on an already-tracked key, but the hint still lands
        ledger.record_report(0, evaluations_total=100, elapsed=1.0)
        ledger.add_worker(0, speed_hint=2.0)
        assert ledger.rate_of(0) == pytest.approx(100.0)
        assert ledger.export_hints() == {0: 2.0, 3: 4.0}

    def test_admitted_worker_blocks_weighted_split_until_observed(self):
        ledger = make_ledger()
        ledger.record_report(0, evaluations_total=100, elapsed=1.0)
        ledger.record_report(1, evaluations_total=100, elapsed=1.0)
        ledger.record_report(2, evaluations_total=100, elapsed=1.0)
        ledger.add_worker(3)
        assert ledger.throughput_weights([0, 1, 2, 3]) is None
        ledger.record_report(3, evaluations_total=50, elapsed=1.0)
        assert ledger.throughput_weights([0, 1, 2, 3]) is not None

    def test_revive_does_not_resurrect_drained_workers(self):
        ledger = make_ledger()
        ledger.mark_dead(0)
        ledger.mark_drained(1)
        fresh = make_ledger()
        fresh.install_state(ledger.export_state(), revive=True)
        assert fresh.alive_keys() == [0, 2]  # the dead worker revives...
        assert fresh.drained_keys() == [1]  # ...the drained one stays retired

    def test_drained_flag_round_trips(self):
        ledger = make_ledger()
        ledger.mark_drained(2)
        state = ledger.export_state()
        assert state[2][8] is True
        fresh = make_ledger()
        fresh.install_state(state, revive=False)
        assert fresh.drained_keys() == [2]
        assert fresh.export_state() == state

    def test_install_accepts_pre_elasticity_eight_element_rows(self):
        # checkpoints written before the drained flag existed have 8-tuples
        old_rows = tuple(row[:8] for row in make_ledger().export_state())
        fresh = make_ledger()
        fresh.install_state(old_rows, revive=False)
        assert fresh.drained_keys() == []
        assert fresh.alive_keys() == [0, 1, 2]
