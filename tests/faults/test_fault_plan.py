"""Validation and JSON loading of the declarative fault plans."""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.pvm import (
    DrainWorker,
    FaultPlan,
    KillWorker,
    MessageFaults,
    SpawnWorker,
    ThrottleMachine,
)
from repro.pvm.faults import (
    DEFAULT_PROTECTED_TAGS,
    WORKER_ADMIT_TAG,
    WORKER_DOWN_TAG,
    WORKER_DRAIN_TAG,
)


class TestKillWorker:
    def test_needs_a_selector(self):
        with pytest.raises(SimulationError, match="selector"):
            KillWorker(at=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError, match="time"):
            KillWorker(at=-1.0, name="tsw0")

    def test_non_finite_time_rejected(self):
        with pytest.raises(SimulationError, match="time"):
            KillWorker(at=float("nan"), name="tsw0")

    def test_negative_machine_rejected(self):
        with pytest.raises(SimulationError, match="machine"):
            KillWorker(at=0.0, machine=-1)


class TestThrottleMachine:
    def test_zero_factor_rejected(self):
        with pytest.raises(SimulationError, match="factor"):
            ThrottleMachine(at=0.0, machine=0, factor=0.0)

    def test_until_must_follow_at(self):
        with pytest.raises(SimulationError, match="until"):
            ThrottleMachine(at=2.0, machine=0, factor=0.5, until=1.0)

    def test_bounded_throttle_accepted(self):
        throttle = ThrottleMachine(at=1.0, machine=2, factor=0.25, until=9.0)
        assert throttle.factor == 0.25


class TestMessageFaults:
    def test_loss_probability_must_be_below_one(self):
        with pytest.raises(SimulationError, match="loss_probability"):
            MessageFaults(loss_probability=1.0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(SimulationError, match="delay_jitter"):
            MessageFaults(delay_jitter=-0.1)

    def test_window_activation(self):
        faults = MessageFaults(loss_probability=0.1, start=1.0, stop=2.0)
        assert not faults.active_at(0.5)
        assert faults.active_at(1.0)
        assert not faults.active_at(2.0)

    def test_lifecycle_tags_protected_by_default(self):
        faults = MessageFaults(loss_probability=0.1)
        assert WORKER_DOWN_TAG in faults.protect_tags
        assert WORKER_ADMIT_TAG in faults.protect_tags
        assert WORKER_DRAIN_TAG in faults.protect_tags
        assert set(DEFAULT_PROTECTED_TAGS) <= set(faults.protect_tags)


class TestSpawnWorker:
    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError, match="time"):
            SpawnWorker(at=-1.0)

    def test_zero_count_rejected(self):
        with pytest.raises(SimulationError, match="count"):
            SpawnWorker(at=1.0, count=0)

    def test_negative_machine_rejected(self):
        with pytest.raises(SimulationError, match="machine"):
            SpawnWorker(at=1.0, machine=-2)

    def test_bad_speed_hint_rejected(self):
        with pytest.raises(SimulationError, match="speed_hint"):
            SpawnWorker(at=1.0, speed_hint=0.0)

    def test_valid_spawn_accepted(self):
        spawn = SpawnWorker(at=0.5, count=2, machine=1, speed_hint=2.0)
        assert spawn.count == 2

    def test_errors_are_value_errors(self):
        # fault plans are user-supplied config: callers that only know
        # stdlib exceptions can still catch the validation failure
        with pytest.raises(ValueError):
            SpawnWorker(at=1.0, count=0)


class TestDrainWorker:
    def test_needs_a_name(self):
        with pytest.raises(SimulationError, match="name"):
            DrainWorker(at=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError, match="time"):
            DrainWorker(at=-0.5, name="tsw1")


class TestFaultPlan:
    def test_empty_plan(self):
        assert FaultPlan().empty
        assert not FaultPlan(kills=(KillWorker(at=0.0, name="x"),)).empty

    def test_from_dict_round_trip(self):
        plan = FaultPlan.from_dict(
            {
                "seed": 9,
                "kills": [{"at": 1.5, "name": "tsw1"}],
                "throttles": [{"at": 0.5, "machine": 2, "factor": 0.25}],
                "message_faults": {"loss_probability": 0.05, "delay_jitter": 0.01},
            }
        )
        assert plan.seed == 9
        assert plan.kills[0].name == "tsw1"
        assert plan.throttles[0].factor == 0.25
        assert plan.message_faults.loss_probability == 0.05

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SimulationError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"kils": []})

    def test_from_dict_rejects_malformed_entries(self):
        with pytest.raises(SimulationError, match="malformed"):
            FaultPlan.from_dict({"kills": [{"when": 1.0}]})

    def test_from_dict_loads_spawns_and_drains(self):
        plan = FaultPlan.from_dict(
            {
                "spawns": [{"at": 0.5, "count": 2, "speed_hint": 2.0}],
                "drains": [{"at": 1.0, "name": "tsw1"}],
            }
        )
        assert plan.spawns[0].count == 2
        assert plan.drains[0].name == "tsw1"
        assert not plan.empty

    def test_errors_name_the_offending_entry_and_field(self):
        with pytest.raises(SimulationError, match=r"kills\[1\].*at"):
            FaultPlan.from_dict(
                {"kills": [{"at": 1.0, "name": "tsw0"}, {"at": -1.0, "name": "tsw1"}]}
            )
        with pytest.raises(SimulationError, match=r"spawns\[0\].*count"):
            FaultPlan.from_dict({"spawns": [{"at": 1.0, "count": 0}]})
        with pytest.raises(SimulationError, match=r"drains\[2\].*name"):
            FaultPlan.from_dict(
                {
                    "drains": [
                        {"at": 0.1, "name": "tsw0"},
                        {"at": 0.2, "name": "tsw1"},
                        {"at": 0.3},
                    ]
                }
            )

    def test_unknown_entry_fields_are_named(self):
        with pytest.raises(SimulationError, match=r"spawns\[0\].*speed"):
            FaultPlan.from_dict({"spawns": [{"at": 1.0, "speed": 2.0}]})

    def test_non_list_entry_collections_rejected(self):
        with pytest.raises(SimulationError, match=r"spawns must be a list"):
            FaultPlan.from_dict({"spawns": {"at": 1.0}})

    def test_plan_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"spawns": [{"at": 1.0, "count": 0}]})

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"kills": [{"at": 2.0, "machine": 1}]}))
        plan = FaultPlan.from_file(str(path))
        assert plan.kills[0].machine == 1

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{nope")
        with pytest.raises(SimulationError, match="cannot load fault plan"):
            FaultPlan.from_file(str(path))
