"""Checkpoint/resume while fault mode is armed: the ledger survives the pause.

PR 8 made the master fault-tolerant and PR 7 made runs resumable; this suite
pins their composition.  A mid-run checkpoint of a fault-mode session must
carry the health ledger (strikes, EWMA throughput, speed hints) through the
artifact byte round-trip, a resume must revive workers without losing that
history, and a kill landing *after* the resume must leave the same degraded
trajectory as the run that never paused.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import FaultPolicy, ParallelSearchParams
from repro.pvm import FaultPlan, KillWorker
from repro.session import SearchSession, SessionState
from repro.tabu import TabuSearchParams

NUM_TSWS = 3


def fault_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=NUM_TSWS,
        clws_per_tsw=2,
        global_iterations=5,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
        seed=11,
        fault=FaultPolicy(
            round_deadline=50.0, clw_deadline=25.0, max_missed_deadlines=0
        ),
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


def assert_bit_identical(resumed, baseline):
    assert resumed.best_cost == baseline.best_cost
    assert np.array_equal(resumed.best_solution, baseline.best_solution)
    assert len(resumed.global_records) == len(baseline.global_records)
    for ours, theirs in zip(resumed.global_records, baseline.global_records):
        assert ours.received_costs == theirs.received_costs
        assert ours.best_cost_after == theirs.best_cost_after


class TestLedgerThroughTheArtifact:
    def test_ledger_rows_round_trip_with_throughput_history(self, problem):
        plan = FaultPlan(kills=(KillWorker(at=0.16, name="tsw1"),))
        session = SearchSession(
            problem=problem, params=fault_params(), fault_plan=plan
        )
        session.step(4)  # the kill has fired by now (round 3)
        state = SessionState.from_bytes(session.checkpoint().to_bytes())
        rows = {row[0]: row for row in state.run_state.health}
        assert sorted(rows) == list(range(NUM_TSWS))
        # the dead worker's row records the death; survivors carry EWMA rates
        assert rows[1][1] is False
        assert rows[1][8] is False  # dead, not drained
        for key in (0, 2):
            assert rows[key][1] is True
            assert rows[key][3] is not None and rows[key][3] > 0  # rate
            assert rows[key][5] > 0  # rounds_reported

    def test_speed_hints_round_trip_and_rearm_the_resumed_ledger(self, problem):
        params = fault_params(worker_speed_hints=(1.0, 2.0, 4.0))
        session = SearchSession(problem=problem, params=params)
        session.step(2)
        state = SessionState.from_bytes(session.checkpoint().to_bytes())
        assert state.run_state.speed_hints == {0: 1.0, 1: 2.0, 2: 4.0}
        # a resume rebuilds the ledger with the same hints and keeps history
        restored = SearchSession.restore(state)
        result = restored.run()
        assert result.complete
        rows = {row[0]: row for row in restored._master_result.health}
        for key in range(NUM_TSWS):
            assert rows[key][5] > 0

    def test_resume_revives_earlier_deaths_but_keeps_history(self, problem):
        plan = FaultPlan(kills=(KillWorker(at=0.16, name="tsw1"),))
        session = SearchSession(
            problem=problem, params=fault_params(), fault_plan=plan
        )
        session.step(4)
        dead_rows = {row[0]: row for row in session.checkpoint().run_state.health}
        assert dead_rows[1][1] is False
        # cold resume = repair: the dead worker is respawned and reports again
        restored = SearchSession.restore(session.checkpoint())
        result = restored.run()
        assert result.complete
        rows = {row[0]: row for row in restored._master_result.health}
        assert rows[1][1] is True
        assert len(result.global_records[-1].received_costs) == NUM_TSWS


class TestKillAfterResume:
    def test_kill_after_resume_matches_uninterrupted(self, problem):
        # Uninterrupted: the kill at t=0.16 lands mid-round-3.
        plan = FaultPlan(kills=(KillWorker(at=0.16, name="tsw1"),))
        base_session = SearchSession(
            problem=problem, params=fault_params(), fault_plan=plan
        )
        baseline = base_session.run()
        assert base_session._master_result.dead_workers == ("tsw1",)
        per_round = [len(r.received_costs) for r in baseline.global_records]
        assert per_round == [3, 3, 2, 2, 2]

        # Interrupted after round 1, resumed with the kill re-aimed at the
        # resumed kernel's clock (which restarts at zero; t=0.14 is mid-
        # round-3 there, the same point in the trajectory).
        session = SearchSession(
            problem=problem, params=fault_params(), fault_plan=plan
        )
        session.step(1)
        assert session._topology_events == []  # paused before the kill
        state = SessionState.from_bytes(session.checkpoint().to_bytes())
        restored = SearchSession.restore(
            state, fault_plan=FaultPlan(kills=(KillWorker(at=0.14, name="tsw1"),))
        )
        resumed = restored.run()
        assert resumed.complete
        assert restored._master_result.dead_workers == ("tsw1",)
        assert_bit_identical(resumed, baseline)

    def test_kill_after_resume_is_replayable(self, problem):
        plan = FaultPlan(kills=(KillWorker(at=0.16, name="tsw1"),))
        resumed_plan = FaultPlan(kills=(KillWorker(at=0.14, name="tsw1"),))

        def interrupted_run():
            session = SearchSession(
                problem=problem, params=fault_params(), fault_plan=plan
            )
            session.step(1)
            state = SessionState.from_bytes(session.checkpoint().to_bytes())
            restored = SearchSession.restore(state, fault_plan=resumed_plan)
            return restored.run()

        first = interrupted_run()
        second = interrupted_run()
        assert_bit_identical(first, second)
        assert first.trace == second.trace
