"""Shared fixtures for the fault-tolerance suite."""

from __future__ import annotations

import pytest

from repro.core.registry import get_domain


@pytest.fixture(scope="session")
def problem():
    return get_domain("placement").build_problem("tiny16", reference_seed=7)
