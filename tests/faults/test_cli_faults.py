"""CLI surface of the fault-tolerance machinery."""

from __future__ import annotations

import json

from repro.cli import main

RUN_QUICK = [
    "run", "--circuit", "tiny16", "--tsws", "3", "--clws", "2",
    "--global-iterations", "3", "--local-iterations", "3",
]


class TestFaultFlags:
    def test_fault_tolerant_run(self, capsys):
        assert main(RUN_QUICK + ["--fault-tolerant"]) == 0
        out = capsys.readouterr().out
        assert "fault-tolerant" in out
        assert "best cost" in out

    def test_round_deadline_implies_fault_tolerance(self, capsys):
        assert main(RUN_QUICK + ["--round-deadline", "10"]) == 0
        assert "fault-tolerant" in capsys.readouterr().out

    def test_fault_plan_prints_the_event_table(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"seed": 7, "kills": [{"at": 0.08, "name": "tsw1"}]}))
        code = main(
            RUN_QUICK + ["--global-iterations", "5", "--fault-plan", str(plan)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fault events" in out
        assert "worker-dead" in out
        assert "range-reassigned" in out

    def test_bad_fault_plan_is_reported(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text("{not json")
        code = main(RUN_QUICK + ["--fault-plan", str(plan)])
        assert code != 0
        assert "fault plan" in capsys.readouterr().err

    def test_resume_rejects_fault_flags(self, tmp_path, capsys):
        ckpt = tmp_path / "run.rtss"
        assert main(RUN_QUICK + ["--pause-after", "1", "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        code = main(["run", "--resume", str(ckpt), "--fault-tolerant"])
        assert code != 0
        assert "fault" in capsys.readouterr().err


class TestSessionsInspect:
    def test_inspect_reports_topology_history(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(
            json.dumps(
                {
                    "spawns": [{"at": 0.05, "count": 1}],
                    "kills": [{"at": 0.16, "name": "tsw1"}],
                }
            )
        )
        ckpt = tmp_path / "run.rtss"
        assert main(
            RUN_QUICK
            + [
                "--global-iterations", "5",
                "--fault-plan", str(plan),
                "--pause-after", "4",
                "--checkpoint", str(ckpt),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["sessions", "inspect", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "Topology history" in out
        assert "worker-admitted" in out
        assert "worker-dead" in out
        assert "4 worker slot(s)" in out

    def test_inspect_without_elastic_events_prints_a_clean_sheet(
        self, tmp_path, capsys
    ):
        ckpt = tmp_path / "run.rtss"
        assert main(
            RUN_QUICK + ["--pause-after", "1", "--checkpoint", str(ckpt)]
        ) == 0
        capsys.readouterr()
        assert main(["sessions", "inspect", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "no admissions" in out

    def test_inspect_needs_a_file(self, capsys):
        code = main(["sessions", "inspect"])
        assert code != 0
        assert "checkpoint" in capsys.readouterr().err
