"""Elastic scale-up and graceful drain: admit new workers into a running search.

The elasticity counterpart of ``test_sim_recovery``: seeded
:class:`~repro.pvm.SpawnWorker` / :class:`~repro.pvm.DrainWorker` plan
entries grow and shrink the TSW roster at fixed virtual times on the
simulated backend (bit-identically on every replay), while
:meth:`~repro.session.WorkerPool.grow` / ``drain`` do the same against live
runs on the real backends.  Admission is processed at global-iteration
boundaries only, so the trajectory stays deterministic; a drained worker
retires without a strike and its loop stays reusable.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.parallel import FaultPolicy, ParallelSearchParams
from repro.pvm import DrainWorker, FaultPlan, KillWorker, SpawnWorker
from repro.session import SearchSession, SessionState, WorkerPool
from repro.tabu import TabuSearchParams

NUM_TSWS = 3


def fault_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=NUM_TSWS,
        clws_per_tsw=2,
        global_iterations=5,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
        seed=11,
        fault=FaultPolicy(
            round_deadline=50.0, clw_deadline=25.0, max_missed_deadlines=0
        ),
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


def run_session(problem, plan, **overrides):
    session = SearchSession(
        problem=problem, params=fault_params(**overrides), fault_plan=plan
    )
    result = session.run()
    return result, session._master_result


def event_tuples(result):
    return [(e.time, e.kind, e.worker, e.detail) for e in result.fault_events]


def assert_bit_identical(first, second):
    assert first.best_cost == second.best_cost
    assert np.array_equal(first.best_solution, second.best_solution)
    assert len(first.global_records) == len(second.global_records)
    for ours, theirs in zip(first.global_records, second.global_records):
        assert ours.received_costs == theirs.received_costs
        assert ours.best_cost_after == theirs.best_cost_after


# --------------------------------------------------------------------------- #
# seeded admission on the simulated backend
# --------------------------------------------------------------------------- #
class TestSimAdmission:
    def test_spawned_workers_join_and_contribute(self, problem):
        plan = FaultPlan(seed=7, spawns=(SpawnWorker(at=0.05, count=2),))
        result, master = run_session(problem, plan)
        assert result.complete
        assert master.admitted_workers == ("tsw3", "tsw4")
        assert master.num_workers == NUM_TSWS + 2
        kinds = [e.kind for e in result.fault_events]
        assert kinds.count("worker-admitted") == 2
        assert "range-reassigned" in kinds
        # all K+N ranges are live: every worker's ledger row shows reports
        # and evaluations after admission (new workers included)
        rows = {row[0]: row for row in master.health}
        assert sorted(rows) == list(range(NUM_TSWS + 2))
        for key in (NUM_TSWS, NUM_TSWS + 1):
            alive, last_evaluations = rows[key][1], rows[key][4]
            assert alive
            assert last_evaluations > 0

    def test_admission_replay_is_bit_identical(self, problem):
        plan = FaultPlan(seed=7, spawns=(SpawnWorker(at=0.05, count=2),))
        first, _ = run_session(problem, plan)
        second, _ = run_session(problem, plan)
        assert first.trace == second.trace
        assert event_tuples(first) == event_tuples(second)
        assert_bit_identical(first, second)

    def test_grow_plus_kill_replays_bit_identically(self, problem):
        plan = FaultPlan(
            seed=7,
            spawns=(SpawnWorker(at=0.05, count=2),),
            kills=(KillWorker(at=0.16, name="tsw1"),),
        )
        first, master = run_session(problem, plan)
        assert first.complete
        assert master.admitted_workers == ("tsw3", "tsw4")
        assert master.dead_workers == ("tsw1",)
        second, _ = run_session(problem, plan)
        assert first.trace == second.trace
        assert event_tuples(first) == event_tuples(second)
        assert_bit_identical(first, second)

    def test_admitted_speed_hint_is_recorded(self, problem):
        plan = FaultPlan(
            spawns=(SpawnWorker(at=0.05, count=1, speed_hint=2.5),)
        )
        session = SearchSession(
            problem=problem, params=fault_params(), fault_plan=plan
        )
        session.step(3)
        state = session.checkpoint()
        hints = state.run_state.speed_hints or {}
        assert hints.get(NUM_TSWS) == 2.5
        admitted = [e for e in state.topology_events if e.kind == "worker-admitted"]
        assert [e.worker for e in admitted] == [f"tsw{NUM_TSWS}"]


class TestSimDrain:
    def test_drain_retires_without_strike(self, problem):
        plan = FaultPlan(drains=(DrainWorker(at=0.05, name="tsw1"),))
        result, master = run_session(problem, plan)
        assert result.complete
        assert master.drained_workers == ("tsw1",)
        assert master.dead_workers == ()
        drains = [e for e in result.fault_events if e.kind == "worker-drained"]
        assert [e.worker for e in drains] == ["tsw1"]
        assert "no strike" in drains[0].detail
        rows = {row[0]: row for row in master.health}
        # drained flag set, alive cleared, zero missed deadlines (no strike)
        assert rows[1][8] is True
        assert rows[1][1] is False
        assert rows[1][2] == 0

    def test_drain_replay_is_bit_identical(self, problem):
        plan = FaultPlan(drains=(DrainWorker(at=0.05, name="tsw1"),))
        first, _ = run_session(problem, plan)
        second, _ = run_session(problem, plan)
        assert first.trace == second.trace
        assert event_tuples(first) == event_tuples(second)
        assert_bit_identical(first, second)


# --------------------------------------------------------------------------- #
# grown topology x checkpoint/resume
# --------------------------------------------------------------------------- #
class TestGrownTopologyResume:
    def test_grown_resume_is_bit_identical(self, problem):
        plan = FaultPlan(spawns=(SpawnWorker(at=0.05, count=2),))
        baseline, base_master = run_session(problem, plan)
        assert base_master.num_workers == NUM_TSWS + 2

        session = SearchSession(
            problem=problem, params=fault_params(), fault_plan=plan
        )
        session.step(3)
        blob = session.checkpoint().to_bytes()
        state = SessionState.from_bytes(blob)
        # the admission happened before the interrupt and is in the artifact;
        # the resumed epoch is NOT re-armed with the plan (its kernel clock
        # restarts at zero, so the spawn would fire again) — the grown
        # topology comes from the artifact alone
        assert state.run_state.num_workers == NUM_TSWS + 2
        restored = SearchSession.restore(state)
        resumed = restored.run()
        assert resumed.complete
        assert_bit_identical(resumed, baseline)
        assert restored._master_result.num_workers == NUM_TSWS + 2

    def test_topology_events_survive_the_artifact_round_trip(self, problem):
        plan = FaultPlan(
            spawns=(SpawnWorker(at=0.05, count=1),),
            kills=(KillWorker(at=0.16, name="tsw1"),),
        )
        session = SearchSession(
            problem=problem, params=fault_params(), fault_plan=plan
        )
        session.step(4)
        blob = session.checkpoint().to_bytes()
        state = SessionState.from_bytes(blob)
        kinds = [e.kind for e in state.topology_events]
        assert "worker-admitted" in kinds
        assert "worker-dead" in kinds
        # restored sessions keep accumulating on top of the restored history
        restored = SearchSession.restore(state)
        assert [e.kind for e in restored._topology_events] == kinds

    def test_drained_worker_stays_retired_across_resume(self, problem):
        plan = FaultPlan(drains=(DrainWorker(at=0.05, name="tsw1"),))
        baseline, base_master = run_session(problem, plan)
        assert base_master.drained_workers == ("tsw1",)

        session = SearchSession(
            problem=problem, params=fault_params(), fault_plan=plan
        )
        session.step(3)
        state = SessionState.from_bytes(session.checkpoint().to_bytes())
        assert state.run_state.drained_workers == (1,)
        restored = SearchSession.restore(state)
        resumed = restored.run()
        assert resumed.complete
        # the drain is an earlier-epoch fact, so the resumed epoch reports no
        # *new* drains — but the worker stays retired in the ledger
        assert restored._master_result.drained_workers == ()
        rows = {row[0]: row for row in restored._master_result.health}
        assert rows[1][8] is True  # still drained
        assert rows[1][1] is False  # still off the roster
        assert_bit_identical(resumed, baseline)


# --------------------------------------------------------------------------- #
# live grow/drain on the real backends
# --------------------------------------------------------------------------- #
def elastic_pool_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=2,
        clws_per_tsw=1,
        global_iterations=60,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=8, pairs_per_step=4, move_depth=2),
        seed=11,
        fault=FaultPolicy(
            round_deadline=50.0, clw_deadline=25.0, max_missed_deadlines=0
        ),
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


class TestThreadsPoolElasticity:
    def test_grow_mid_run_admits_and_contributes(self, problem):
        with WorkerPool(2, 1, backend="threads") as pool:
            grown = []
            timer = threading.Timer(
                0.15, lambda: grown.extend(pool.grow(2, speed_hints=[1.0, 1.0]))
            )
            timer.start()
            try:
                result, _, _ = pool.run_master(
                    problem, elastic_pool_params(), join_timeout=120.0
                )
            finally:
                timer.cancel()
            assert result.complete
            assert len(grown) == 2
            assert result.admitted_workers == ("tsw2", "tsw3")
            assert result.num_workers == 4
            rows = {row[0]: row for row in result.health}
            assert sorted(rows) == [0, 1, 2, 3]
            for key in (2, 3):
                assert rows[key][4] > 0  # admitted workers ran real ranges
            kinds = [e.kind for e in result.fault_events]
            assert kinds.count("worker-admitted") == 2
            assert "range-reassigned" in kinds

    def test_drain_mid_run_then_pool_reuse(self, problem):
        with WorkerPool(3, 1, backend="threads") as pool:
            signalled = []
            timer = threading.Timer(0.15, lambda: signalled.append(pool.drain(1)))
            timer.start()
            try:
                result, _, _ = pool.run_master(
                    problem,
                    elastic_pool_params(num_tsws=3),
                    join_timeout=120.0,
                )
            finally:
                timer.cancel()
            assert result.complete
            assert signalled == [True]
            assert result.drained_workers == ("tsw1",)
            assert result.dead_workers == ()
            # the drained loop parked idle: a later fresh run reuses it
            second, _, _ = pool.run_master(
                problem,
                elastic_pool_params(
                    num_tsws=3,
                    global_iterations=2,
                    tabu=TabuSearchParams(local_iterations=3),
                ),
                join_timeout=120.0,
            )
            assert second.complete
            assert second.drained_workers == ()

    def test_grow_between_runs_idles_until_admitted(self, problem):
        with WorkerPool(2, 1, backend="threads") as pool:
            pool.grow(1)
            assert len(pool.tsw_pids) == 3
            # no run in flight: nothing to signal, the loop just parks
            result, _, _ = pool.run_master(
                problem,
                elastic_pool_params(
                    global_iterations=2, tabu=TabuSearchParams(local_iterations=3)
                ),
                join_timeout=120.0,
            )
            assert result.complete
            assert result.num_workers == 2  # fresh runs use the configured K


class TestProcessesPoolElasticity:
    def test_grow_mid_run_admits_and_contributes(self, problem):
        with WorkerPool(2, 1, backend="processes") as pool:
            pool.kernel.death_report_grace = 0.5
            pool.kernel.death_notify_grace = 0.3
            grown = []
            timer = threading.Timer(
                1.0, lambda: grown.extend(pool.grow(1, speed_hints=[1.0]))
            )
            timer.start()
            try:
                result, _, _ = pool.run_master(
                    problem,
                    elastic_pool_params(global_iterations=40),
                    join_timeout=120.0,
                )
            finally:
                timer.cancel()
            assert result.complete
            assert len(grown) == 1
            assert result.admitted_workers == ("tsw2",)
            assert result.num_workers == 3
            rows = {row[0]: row for row in result.health}
            assert rows[2][4] > 0
            kinds = [e.kind for e in result.fault_events]
            assert "worker-admitted" in kinds
            assert "range-reassigned" in kinds


# --------------------------------------------------------------------------- #
# repair history (satellite: respawns surface on the *next* run)
# --------------------------------------------------------------------------- #
class TestRepairHistory:
    def test_manual_repair_is_stamped_into_the_next_run(self, problem):
        with WorkerPool(2, 1, backend="processes") as pool:
            pool.kernel.death_report_grace = 0.5
            pool.kernel.death_notify_grace = 0.3
            victim = pool.tsw_pids[1]
            assert pool.kernel.terminate_worker(victim)
            deadline = time.monotonic() + 10.0
            while not pool.worker_dead(1):
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert pool.repair() == [1]
            # even a run WITHOUT fault mode reports the repair history
            result, _, _ = pool.run_master(
                problem,
                elastic_pool_params(
                    fault=None,
                    global_iterations=2,
                    tabu=TabuSearchParams(local_iterations=3),
                ),
                join_timeout=120.0,
            )
            assert result.complete
            respawns = [
                e for e in result.fault_events if e.kind == "worker-respawned"
            ]
            assert [e.worker for e in respawns] == ["tsw1"]
            # the history is consumed: the run after reports a clean sheet
            second, _, _ = pool.run_master(
                problem,
                elastic_pool_params(
                    fault=None,
                    global_iterations=2,
                    tabu=TabuSearchParams(local_iterations=3),
                ),
                join_timeout=120.0,
            )
            assert second.fault_events == []
