"""End-to-end recovery on the simulated backend: deterministic degradation.

These are the headline tests of the fault-tolerant master: a seeded
:class:`~repro.pvm.FaultPlan` kills workers (or degrades the network) at
fixed virtual times, and the run must *complete* — degraded, with the dead
worker's candidate range re-assigned — with a bit-identical trajectory on
every repetition of the same plan.
"""

from __future__ import annotations

import pytest

from repro.parallel import FaultPolicy, ParallelSearchParams
from repro.pvm import FaultPlan, KillWorker, MessageFaults, ThrottleMachine
from repro.session import SearchSession
from repro.tabu import TabuSearchParams

NUM_TSWS = 3


def fault_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=NUM_TSWS,
        clws_per_tsw=2,
        global_iterations=5,
        sync_mode="homogeneous",
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
        seed=11,
        fault=FaultPolicy(
            round_deadline=50.0, clw_deadline=25.0, max_missed_deadlines=0
        ),
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


def run_with(problem, plan, **overrides):
    session = SearchSession(
        problem=problem, params=fault_params(**overrides), fault_plan=plan
    )
    return session.run()


def event_tuples(result):
    return [(e.time, e.kind, e.worker, e.detail) for e in result.fault_events]


class TestKillRecovery:
    def test_tsw_kill_completes_degraded_with_range_reassigned(self, problem):
        plan = FaultPlan(seed=7, kills=(KillWorker(at=0.08, name="tsw1"),))
        result = run_with(problem, plan)
        assert result.complete
        kinds = [e.kind for e in result.fault_events]
        assert "worker-dead" in kinds
        assert "range-reassigned" in kinds
        dead = [e.worker for e in result.fault_events if e.kind == "worker-dead"]
        assert dead == ["tsw1"]

    def test_recovery_trajectory_is_bit_identical(self, problem):
        plan = FaultPlan(seed=7, kills=(KillWorker(at=0.08, name="tsw1"),))
        first = run_with(problem, plan)
        second = run_with(problem, plan)
        assert first.best_cost == second.best_cost
        assert first.trace == second.trace
        assert event_tuples(first) == event_tuples(second)

    def test_clw_kill_recovers_through_the_tsw(self, problem):
        plan = FaultPlan(kills=(KillWorker(at=0.08, name="tsw0.clw1"),))
        result = run_with(problem, plan)
        assert result.complete
        # the TSW lost a CLW, not the master a TSW: no master-level death
        assert "worker-dead" not in [e.kind for e in result.fault_events]

    def test_all_workers_dead_returns_best_so_far(self, problem):
        plan = FaultPlan(
            kills=tuple(
                KillWorker(at=0.08, name=f"tsw{i}") for i in range(NUM_TSWS)
            )
        )
        result = run_with(problem, plan)
        # nothing left to drive: the run ends degraded instead of raising
        assert result.complete
        kinds = [e.kind for e in result.fault_events]
        assert "all-workers-dead" in kinds
        assert result.best_cost is not None

    def test_fault_mode_without_faults_matches_plain_run(self, problem):
        plain = SearchSession(
            problem=problem, params=fault_params(fault=None)
        ).run()
        armed = run_with(problem, None)
        assert armed.complete
        assert armed.fault_events == []
        assert armed.best_cost == plain.best_cost
        assert len(armed.global_records) == len(plain.global_records)
        for ours, theirs in zip(armed.global_records, plain.global_records):
            assert ours.received_costs == theirs.received_costs


class TestNetworkDegradation:
    def test_loss_and_throttle_complete_deterministically(self, problem):
        plan = FaultPlan(
            seed=3,
            throttles=(ThrottleMachine(at=0.02, machine=1, factor=0.2),),
            message_faults=MessageFaults(loss_probability=0.15, delay_jitter=0.002),
        )
        first = run_with(problem, plan)
        second = run_with(problem, plan)
        assert first.complete and second.complete
        assert first.trace == second.trace
        assert event_tuples(first) == event_tuples(second)

    def test_heavy_loss_strikes_silent_workers_out(self, problem):
        # under max_missed_deadlines=0 a single lost report is a strike-out;
        # at 60% loss some worker will go silent within five rounds
        plan = FaultPlan(
            seed=5, message_faults=MessageFaults(loss_probability=0.6)
        )
        result = run_with(problem, plan)
        assert result.complete
        kinds = {e.kind for e in result.fault_events}
        assert kinds & {"worker-dead", "deadline-resend"}
