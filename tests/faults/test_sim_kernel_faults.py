"""Simulated-kernel fault semantics: kills, obituaries, throttles, loss."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.pvm import (
    FaultPlan,
    KillWorker,
    MessageFaults,
    ProcessState,
    SimKernel,
    ThrottleMachine,
    homogeneous_cluster,
)
from repro.pvm.faults import WORKER_DOWN_TAG


def sleeper(ctx, seconds=100.0):
    yield ctx.sleep(seconds)
    return "survived"


class TestKills:
    def test_kill_marks_killed_and_result_raises(self):
        plan = FaultPlan(kills=(KillWorker(at=1.0, name="victim"),))
        kernel = SimKernel(homogeneous_cluster(2), fault_plan=plan)
        pid = kernel.spawn(sleeper, name="victim")
        kernel.run(allow_blocked=True)
        assert kernel.process_info(pid).state is ProcessState.KILLED
        with pytest.raises(ProcessError, match="was killed"):
            kernel.result_of(pid)

    def test_kill_takes_live_descendants_down(self):
        def parent(ctx):
            child = yield ctx.spawn(sleeper, name="child")
            yield ctx.sleep(100.0)
            return child

        plan = FaultPlan(kills=(KillWorker(at=1.0, name="parent"),))
        kernel = SimKernel(homogeneous_cluster(2), fault_plan=plan)
        pid = kernel.spawn(parent, name="parent")
        kernel.run(allow_blocked=True)
        states = {info.name: info.state for info in kernel.all_processes()}
        assert states["parent"] is ProcessState.KILLED
        assert states["child"] is ProcessState.KILLED
        assert kernel.process_info(pid).state is ProcessState.KILLED

    def test_kill_by_machine_selector(self):
        plan = FaultPlan(kills=(KillWorker(at=1.0, machine=1),))
        kernel = SimKernel(homogeneous_cluster(2), fault_plan=plan)
        on_m0 = kernel.spawn(sleeper, 2.0, name="a", machine_index=0)
        on_m1 = kernel.spawn(sleeper, 2.0, name="b", machine_index=1)
        kernel.run(allow_blocked=True)
        assert kernel.result_of(on_m0) == "survived"
        assert kernel.process_info(on_m1).state is ProcessState.KILLED

    def test_obituary_reaches_the_death_listener(self):
        def listener(ctx):
            notice = yield ctx.recv(tag=WORKER_DOWN_TAG)
            return (notice.payload.name, notice.payload.pid)

        plan = FaultPlan(kills=(KillWorker(at=1.0, name="victim"),))
        kernel = SimKernel(homogeneous_cluster(2), fault_plan=plan)
        victim = kernel.spawn(sleeper, name="victim")
        hear = kernel.spawn(listener, name="listener")
        kernel.notify_deaths_to(hear)
        kernel.run(allow_blocked=True)
        assert kernel.result_of(hear) == ("victim", victim)

    def test_kill_matching_no_live_process_is_a_noop(self):
        plan = FaultPlan(kills=(KillWorker(at=50.0, name="ghost"),))
        kernel = SimKernel(homogeneous_cluster(2), fault_plan=plan)
        pid = kernel.spawn(sleeper, 1.0, name="real")
        kernel.run(allow_blocked=True)
        assert kernel.result_of(pid) == "survived"


class TestThrottles:
    def _makespan(self, plan):
        def worker(ctx):
            yield ctx.compute(100.0)
            return (yield ctx.now())

        kernel = SimKernel(homogeneous_cluster(1), fault_plan=plan)
        pid = kernel.spawn(worker, name="w", machine_index=0)
        kernel.run(allow_blocked=True)
        return kernel.result_of(pid)

    def test_throttle_slows_compute(self):
        slow = self._makespan(
            FaultPlan(throttles=(ThrottleMachine(at=0.0, machine=0, factor=0.5),))
        )
        fast = self._makespan(FaultPlan())
        assert slow == pytest.approx(fast * 2.0, rel=1e-6)

    def test_throttle_window_restores_full_speed(self):
        # speed is sampled when a compute starts: begin the measured compute
        # after the throttle window and it must run at full speed again
        def late_worker(ctx):
            yield ctx.sleep(0.01)
            start = yield ctx.now()
            yield ctx.compute(100.0)
            return (yield ctx.now()) - start

        def duration(plan):
            kernel = SimKernel(homogeneous_cluster(1), fault_plan=plan)
            pid = kernel.spawn(late_worker, name="w", machine_index=0)
            kernel.run(allow_blocked=True)
            return kernel.result_of(pid)

        restored = duration(
            FaultPlan(
                throttles=(ThrottleMachine(at=0.0, machine=0, factor=0.5, until=0.005),)
            )
        )
        throttled = duration(
            FaultPlan(throttles=(ThrottleMachine(at=0.0, machine=0, factor=0.5),))
        )
        assert throttled == pytest.approx(restored * 2.0, rel=1e-6)


class TestMessageLoss:
    def _received(self, seed, loss):
        def receiver(ctx):
            got = 0
            while True:
                message = yield ctx.recv_timeout(5.0, tag="data")
                if message is None:
                    return got
                got += 1

        def sender(ctx, dst):
            for i in range(40):
                yield ctx.send(dst, "data", i)
            return None

        plan = FaultPlan(
            seed=seed, message_faults=MessageFaults(loss_probability=loss)
        )
        kernel = SimKernel(homogeneous_cluster(2), fault_plan=plan)
        dst = kernel.spawn(receiver, name="recv")
        kernel.spawn(sender, dst, name="send")
        kernel.run(allow_blocked=True)
        return kernel.result_of(dst)

    def test_loss_is_seed_deterministic(self):
        first = self._received(seed=11, loss=0.4)
        second = self._received(seed=11, loss=0.4)
        assert first == second
        assert 0 < first < 40  # some messages dropped, not all

    def test_protected_tags_never_dropped(self):
        def receiver(ctx):
            got = 0
            for _ in range(20):
                yield ctx.recv(tag="stop")
                got += 1
            return got

        def sender(ctx, dst):
            for _ in range(20):
                yield ctx.send(dst, "stop")
            return None

        plan = FaultPlan(
            seed=3, message_faults=MessageFaults(loss_probability=0.9)
        )
        kernel = SimKernel(homogeneous_cluster(2), fault_plan=plan)
        dst = kernel.spawn(receiver, name="recv")
        kernel.spawn(sender, dst, name="send")
        kernel.run(allow_blocked=True)
        assert kernel.result_of(dst) == 20

    def test_jitter_can_reorder_but_loses_nothing(self):
        def receiver(ctx):
            seen = []
            while len(seen) < 30:
                message = yield ctx.recv(tag="data")
                seen.append(message.payload)
            return seen

        def sender(ctx, dst):
            for i in range(30):
                yield ctx.send(dst, "data", i)
            return None

        plan = FaultPlan(
            seed=5, message_faults=MessageFaults(delay_jitter=0.05)
        )
        kernel = SimKernel(homogeneous_cluster(2), fault_plan=plan)
        dst = kernel.spawn(receiver, name="recv")
        kernel.spawn(sender, dst, name="send")
        kernel.run(allow_blocked=True)
        assert sorted(kernel.result_of(dst)) == list(range(30))
