"""Unit tests for the fuzzy goal-directed aggregation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CostModelError
from repro.fuzzy import FuzzyGoal, FuzzyGoalAggregator


def make_aggregator(beta: float = 0.7) -> FuzzyGoalAggregator:
    return FuzzyGoalAggregator(
        [
            FuzzyGoal(name="wirelength", goal=100.0, upper=200.0, weight=2.0),
            FuzzyGoal(name="delay", goal=10.0, upper=20.0),
            FuzzyGoal(name="area", goal=50.0, upper=100.0),
        ],
        beta=beta,
    )


class TestFuzzyGoal:
    def test_membership_shape(self):
        goal = FuzzyGoal(name="x", goal=10.0, upper=20.0)
        assert goal.membership(5.0) == 1.0
        assert goal.membership(15.0) == pytest.approx(0.5)
        assert goal.membership(25.0) == 0.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(CostModelError):
            FuzzyGoal(name="x", goal=10.0, upper=10.0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(CostModelError):
            FuzzyGoal(name="x", goal=10.0, upper=20.0, weight=0.0)

    def test_from_reference(self):
        goal = FuzzyGoal.from_reference("x", 100.0, goal_factor=0.5, upper_factor=1.2)
        assert goal.goal == pytest.approx(50.0)
        assert goal.upper == pytest.approx(120.0)

    def test_from_reference_invalid_factors(self):
        with pytest.raises(CostModelError):
            FuzzyGoal.from_reference("x", 100.0, goal_factor=1.3, upper_factor=1.2)

    def test_from_reference_negative_reference(self):
        with pytest.raises(CostModelError):
            FuzzyGoal.from_reference("x", -1.0, goal_factor=0.5, upper_factor=1.2)


class TestAggregator:
    def test_all_goals_met_gives_zero_cost(self):
        aggregator = make_aggregator()
        values = {"wirelength": 50.0, "delay": 5.0, "area": 25.0}
        assert aggregator.membership(values) == pytest.approx(1.0)
        assert aggregator.cost(values) == pytest.approx(0.0)

    def test_all_goals_missed_gives_unit_cost(self):
        aggregator = make_aggregator()
        values = {"wirelength": 500.0, "delay": 50.0, "area": 500.0}
        assert aggregator.cost(values) == pytest.approx(1.0)

    def test_cost_decreases_when_an_objective_improves(self):
        aggregator = make_aggregator()
        worse = {"wirelength": 180.0, "delay": 15.0, "area": 80.0}
        better = {"wirelength": 150.0, "delay": 15.0, "area": 80.0}
        assert aggregator.cost(better) < aggregator.cost(worse)

    def test_missing_objective_rejected(self):
        aggregator = make_aggregator()
        with pytest.raises(CostModelError, match="missing objective"):
            aggregator.membership({"wirelength": 100.0})

    def test_duplicate_goal_names_rejected(self):
        goal = FuzzyGoal(name="x", goal=1.0, upper=2.0)
        with pytest.raises(CostModelError, match="duplicate"):
            FuzzyGoalAggregator([goal, goal])

    def test_empty_goals_rejected(self):
        with pytest.raises(CostModelError):
            FuzzyGoalAggregator([])

    def test_beta_one_reduces_to_worst_objective(self):
        aggregator = make_aggregator(beta=1.0)
        values = {"wirelength": 150.0, "delay": 10.0, "area": 50.0}
        worst = min(aggregator.memberships(values).values())
        assert aggregator.membership(values) == pytest.approx(worst)

    def test_names_property(self):
        assert make_aggregator().names == ("wirelength", "delay", "area")

    @settings(max_examples=100, deadline=None)
    @given(
        wirelength=st.floats(0.0, 1000.0),
        delay=st.floats(0.0, 100.0),
        area=st.floats(0.0, 500.0),
    )
    def test_cost_always_in_unit_interval(self, wirelength, delay, area):
        aggregator = make_aggregator()
        cost = aggregator.cost({"wirelength": wirelength, "delay": delay, "area": area})
        assert 0.0 <= cost <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        base=st.floats(100.0, 200.0),
        improvement=st.floats(0.0, 50.0),
    )
    def test_monotone_in_each_objective(self, base, improvement):
        aggregator = make_aggregator()
        worse = {"wirelength": base, "delay": 12.0, "area": 70.0}
        better = {"wirelength": base - improvement, "delay": 12.0, "area": 70.0}
        assert aggregator.cost(better) <= aggregator.cost(worse) + 1e-12
