"""Unit and property-based tests for the fuzzy aggregation operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CostModelError
from repro.fuzzy import (
    OwaAndLike,
    OwaOrLike,
    andlike_owa,
    fuzzy_and_min,
    fuzzy_or_max,
    orlike_owa,
    probabilistic_sum,
    product_tnorm,
)

memberships = st.lists(st.floats(0.0, 1.0), min_size=1, max_size=8)


class TestAndLikeOwa:
    def test_beta_one_is_min(self):
        values = [0.2, 0.8, 0.5]
        assert andlike_owa(values, 1.0) == pytest.approx(min(values))

    def test_beta_zero_is_mean(self):
        values = [0.2, 0.8, 0.5]
        assert andlike_owa(values, 0.0) == pytest.approx(np.mean(values))

    def test_invalid_beta_rejected(self):
        with pytest.raises(CostModelError):
            andlike_owa([0.5], 1.5)

    def test_invalid_membership_rejected(self):
        with pytest.raises(CostModelError):
            andlike_owa([1.5], 0.5)

    def test_empty_rejected(self):
        with pytest.raises(CostModelError):
            andlike_owa([], 0.5)

    @settings(max_examples=100, deadline=None)
    @given(values=memberships, beta=st.floats(0.0, 1.0))
    def test_bounded_by_min_and_mean(self, values, beta):
        result = andlike_owa(values, beta)
        assert min(values) - 1e-12 <= result <= float(np.mean(values)) + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(values=memberships, beta=st.floats(0.0, 1.0))
    def test_result_in_unit_interval(self, values, beta):
        assert 0.0 <= andlike_owa(values, beta) <= 1.0


class TestOrLikeOwa:
    def test_beta_one_is_max(self):
        values = [0.2, 0.8, 0.5]
        assert orlike_owa(values, 1.0) == pytest.approx(max(values))

    @settings(max_examples=100, deadline=None)
    @given(values=memberships, beta=st.floats(0.0, 1.0))
    def test_orlike_dominates_andlike(self, values, beta):
        assert orlike_owa(values, beta) >= andlike_owa(values, beta) - 1e-12


class TestClassicalOperators:
    @settings(max_examples=100, deadline=None)
    @given(values=memberships)
    def test_tnorm_le_min_le_max_le_snorm(self, values):
        assert product_tnorm(values) <= fuzzy_and_min(values) + 1e-12
        assert fuzzy_and_min(values) <= fuzzy_or_max(values) + 1e-12
        assert fuzzy_or_max(values) <= probabilistic_sum(values) + 1e-12

    def test_single_value_fixed_point(self):
        for op in (fuzzy_and_min, fuzzy_or_max, product_tnorm, probabilistic_sum):
            assert op([0.4]) == pytest.approx(0.4)


class TestCallableWrappers:
    def test_owa_andlike_callable(self):
        op = OwaAndLike(beta=0.7)
        assert op([0.5, 1.0]) == pytest.approx(0.7 * 0.5 + 0.3 * 0.75)

    def test_owa_orlike_callable(self):
        op = OwaOrLike(beta=0.7)
        assert op([0.5, 1.0]) == pytest.approx(0.7 * 1.0 + 0.3 * 0.75)

    def test_invalid_beta_rejected(self):
        with pytest.raises(CostModelError):
            OwaAndLike(beta=-0.1)
