"""Unit and property-based tests for the fuzzy membership functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CostModelError
from repro.fuzzy import DecreasingLinear, IncreasingLinear, Trapezoidal, Triangular

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestDecreasingLinear:
    def test_plateau_values(self):
        mu = DecreasingLinear(low=10.0, high=20.0)
        assert mu.grade(5.0) == 1.0
        assert mu.grade(10.0) == 1.0
        assert mu.grade(20.0) == 0.0
        assert mu.grade(25.0) == 0.0
        assert mu.grade(15.0) == pytest.approx(0.5)

    def test_vectorised_call(self):
        mu = DecreasingLinear(low=0.0, high=1.0)
        values = mu(np.array([-1.0, 0.25, 2.0]))
        assert values == pytest.approx([1.0, 0.75, 0.0])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(CostModelError):
            DecreasingLinear(low=1.0, high=1.0)

    @settings(max_examples=100, deadline=None)
    @given(value=finite_floats)
    def test_membership_always_in_unit_interval(self, value):
        mu = DecreasingLinear(low=2.0, high=7.0)
        assert 0.0 <= mu.grade(value) <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(a=finite_floats, b=finite_floats)
    def test_monotonically_decreasing(self, a, b):
        mu = DecreasingLinear(low=2.0, high=7.0)
        lo, hi = sorted((a, b))
        assert mu.grade(lo) >= mu.grade(hi)


class TestIncreasingLinear:
    def test_values(self):
        mu = IncreasingLinear(low=0.0, high=10.0)
        assert mu.grade(-1.0) == 0.0
        assert mu.grade(5.0) == pytest.approx(0.5)
        assert mu.grade(11.0) == 1.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(CostModelError):
            IncreasingLinear(low=3.0, high=2.0)

    def test_complementary_to_decreasing(self):
        inc = IncreasingLinear(low=1.0, high=3.0)
        dec = DecreasingLinear(low=1.0, high=3.0)
        for value in np.linspace(0.0, 4.0, 17):
            assert inc.grade(value) + dec.grade(value) == pytest.approx(1.0)


class TestTriangular:
    def test_peak_is_one(self):
        mu = Triangular(left=0.0, peak=5.0, right=10.0)
        assert mu.grade(5.0) == 1.0
        assert mu.grade(0.0) == 0.0
        assert mu.grade(10.0) == 0.0
        assert mu.grade(2.5) == pytest.approx(0.5)

    def test_invalid_order_rejected(self):
        with pytest.raises(CostModelError):
            Triangular(left=5.0, peak=5.0, right=10.0)

    @settings(max_examples=100, deadline=None)
    @given(value=finite_floats)
    def test_in_unit_interval(self, value):
        mu = Triangular(left=-1.0, peak=0.0, right=2.0)
        assert 0.0 <= mu.grade(value) <= 1.0


class TestTrapezoidal:
    def test_plateau(self):
        mu = Trapezoidal(left=0.0, shoulder_left=2.0, shoulder_right=4.0, right=6.0)
        assert mu.grade(3.0) == 1.0
        assert mu.grade(1.0) == pytest.approx(0.5)
        assert mu.grade(5.0) == pytest.approx(0.5)
        assert mu.grade(-1.0) == 0.0
        assert mu.grade(7.0) == 0.0

    def test_invalid_order_rejected(self):
        with pytest.raises(CostModelError):
            Trapezoidal(left=0.0, shoulder_left=5.0, shoulder_right=4.0, right=6.0)
