"""Tests for the figure generators (run on tiny configurations).

These tests exercise every figure function end-to-end but on the smallest
circuits and iteration counts, checking the *structure* of the produced data
and the qualitative relations that must hold regardless of scale (e.g. the
diversified run is never worse than the non-diversified run by a large
margin).  The full-size shape checks live in the benchmark harness.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ALL_FIGURES,
    ExperimentScale,
    fig5_clw_quality,
    fig6_clw_speedup,
    fig7_tsw_quality,
    fig9_diversification,
    fig10_local_vs_global,
    fig11_heterogeneity,
)

#: Tiny scale so that every figure generator stays in the tens of milliseconds
#: to low seconds range during unit testing.
TINY = ExperimentScale(
    name="quick",
    global_iterations=2,
    local_iterations=3,
    pairs_per_step=3,
    move_depth=2,
    circuits=("mini64",),
)


class TestRegistry:
    def test_all_seven_figures_registered(self):
        assert set(ALL_FIGURES) == {"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}


class TestFig5:
    def test_structure_and_format(self):
        result = fig5_clw_quality(scale=TINY, circuits=["mini64"], clw_counts=(1, 2))
        assert result.figure_id == "fig5"
        quality = result.data["quality"]["mini64"]
        assert set(quality) == {1, 2}
        assert all(0.0 < cost < 1.0 for cost in quality.values())
        text = result.format()
        assert "mini64" in text and "best cost" in text


class TestFig6:
    def test_speedup_points(self):
        result = fig6_clw_speedup(scale=TINY, circuits=["mini64"], clw_counts=(1, 2))
        points = result.data["curves"]["mini64"]
        assert [p.workers for p in points] == [1, 2]
        assert points[0].speedup == pytest.approx(1.0)
        assert points[0].time is not None


class TestFig7:
    def test_quality_per_tsw_count(self):
        result = fig7_tsw_quality(scale=TINY, circuits=["mini64"], tsw_counts=(1, 2, 3))
        quality = result.data["quality"]["mini64"]
        assert set(quality) == {1, 2, 3}
        assert all(0.0 < cost < 1.0 for cost in quality.values())


class TestFig9:
    def test_diversification_compares_two_runs(self):
        result = fig9_diversification(scale=TINY, circuits=["mini64"])
        per_circuit = result.data["per_circuit"]["mini64"]
        costs = per_circuit["best_costs"]
        assert set(costs) == {"diversified", "non-diversified"}
        assert set(per_circuit["traces"]) == {"diversified", "non-diversified"}


class TestFig10:
    def test_constant_work_combinations(self):
        result = fig10_local_vs_global(
            scale=TINY, circuits=["mini64"], combinations=[(2, 4), (4, 2)]
        )
        per_circuit = result.data["per_circuit"]["mini64"]
        assert set(per_circuit) == {(2, 4), (4, 2)}
        # constant total work: both combinations have global*local == 8
        assert all(g * l == 8 for g, l in per_circuit)


class TestFig11:
    def test_heterogeneous_vs_homogeneous(self):
        result = fig11_heterogeneity(
            scale=TINY, circuits=["mini64"], num_tsws=2, clws_per_tsw=2
        )
        per_circuit = result.data["per_circuit"]["mini64"]
        assert set(per_circuit["runtimes"]) == {"heterogeneous", "homogeneous"}
        assert per_circuit["runtimes"]["heterogeneous"] > 0
        assert per_circuit["best_costs"]["heterogeneous"] < 1.0
