"""Unit tests for the experiment harness (scales, presets, runners)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    FULL_SCALE,
    QUICK_SCALE,
    ExperimentScale,
    circuits_for_scale,
    current_scale,
    params_for_circuit,
    run_configuration,
    trace_of,
)
from repro.experiments.harness import SCALE_ENV_VAR
from repro.metrics import CostTrace


class TestScales:
    def test_quick_scale_defaults(self):
        assert QUICK_SCALE.name == "quick"
        assert set(QUICK_SCALE.circuits) == {"highway", "c532", "c1355", "c3540"}

    def test_full_scale_is_heavier(self):
        assert FULL_SCALE.global_iterations > QUICK_SCALE.global_iterations
        assert FULL_SCALE.local_iterations > QUICK_SCALE.local_iterations

    def test_invalid_scale_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentScale(
                name="bad", global_iterations=0, local_iterations=1,
                pairs_per_step=1, move_depth=1, circuits=("highway",),
            )
        with pytest.raises(ExperimentError):
            ExperimentScale(
                name="bad", global_iterations=1, local_iterations=1,
                pairs_per_step=1, move_depth=1, circuits=(),
            )

    def test_current_scale_env_selection(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "full")
        assert current_scale() is FULL_SCALE
        monkeypatch.setenv(SCALE_ENV_VAR, "quick")
        assert current_scale() is QUICK_SCALE
        monkeypatch.delenv(SCALE_ENV_VAR)
        assert current_scale() is QUICK_SCALE

    def test_current_scale_unknown_rejected(self, monkeypatch):
        monkeypatch.setenv(SCALE_ENV_VAR, "enormous")
        with pytest.raises(ExperimentError, match="unknown experiment scale"):
            current_scale()

    def test_circuits_for_scale_override(self):
        assert circuits_for_scale(QUICK_SCALE, ["c532"]) == ("c532",)
        assert circuits_for_scale(QUICK_SCALE) == QUICK_SCALE.circuits

    def test_circuits_for_scale_max_cells_filter(self):
        capped = ExperimentScale(
            name="tiny", global_iterations=1, local_iterations=1, pairs_per_step=1,
            move_depth=1, circuits=("highway", "c3540"), max_cells=100,
        )
        assert circuits_for_scale(capped) == ("highway",)


class TestParamsForCircuit:
    def test_params_follow_scale(self):
        params = params_for_circuit("highway", QUICK_SCALE, num_tsws=3, clws_per_tsw=2)
        assert params.num_tsws == 3
        assert params.clws_per_tsw == 2
        assert params.global_iterations == QUICK_SCALE.global_iterations
        assert params.tabu.local_iterations == QUICK_SCALE.local_iterations

    def test_tenure_scales_with_circuit_size(self):
        small = params_for_circuit("highway", QUICK_SCALE)
        large = params_for_circuit("c3540", QUICK_SCALE)
        assert large.tabu.tabu_tenure > small.tabu.tabu_tenure

    def test_iteration_overrides(self):
        params = params_for_circuit(
            "highway", QUICK_SCALE, global_iterations=9, local_iterations=2
        )
        assert params.global_iterations == 9
        assert params.tabu.local_iterations == 2


class TestRunConfiguration:
    def test_run_and_trace(self):
        params = params_for_circuit(
            "highway", QUICK_SCALE, num_tsws=2, clws_per_tsw=1,
            global_iterations=2, local_iterations=3,
        )
        result = run_configuration("highway", params)
        assert result.best_cost < result.initial_cost
        trace = trace_of(result, label="highway-run")
        assert isinstance(trace, CostTrace)
        assert trace.label == "highway-run"
        assert trace.best_cost == pytest.approx(min(c for _, c in result.trace))
