"""Device probing and resolution: knob > environment > capability probe.

Everything here must pass identically with and without cupy installed —
the cuda-positive branches are exercised only through the probe's *shape*
(the dataclass fields and report rows), never by assuming a device exists.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import (
    HAVE_CUPY,
    ArrayBackend,
    array_module,
    cuda_available,
    cuda_unavailable_reason,
    device_report,
    module_for,
    probe_cuda,
    resolve_device,
)
from repro.errors import ReproError


class TestProbe:
    def test_probe_is_cached_and_refreshable(self):
        first = probe_cuda()
        assert probe_cuda() is first
        assert probe_cuda(refresh=True) == first  # same machine, same answer

    def test_probe_fields_are_consistent(self):
        probe = probe_cuda()
        if probe.available:
            assert probe.reason == ""
            assert probe.device_count >= 1
        else:
            assert probe.reason
            assert cuda_unavailable_reason() == probe.reason
        assert cuda_available() == probe.available

    @pytest.mark.skipif(HAVE_CUPY, reason="this environment has cupy installed")
    def test_without_cupy_the_reason_names_the_missing_install(self):
        assert "cupy is not installed" in cuda_unavailable_reason()


class TestResolveDevice:
    def test_explicit_cpu_always_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEVICE", "cuda")
        assert resolve_device("cpu") == "cpu"

    def test_env_cpu_is_the_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEVICE", "cpu")
        assert resolve_device() == "cpu"
        assert resolve_device("auto") == "cpu" or cuda_available()

    def test_auto_matches_the_probe(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEVICE", raising=False)
        expected = "cuda" if cuda_available() else "cpu"
        assert resolve_device() == expected
        assert resolve_device("auto") == expected

    def test_unknown_knob_value_raises(self):
        with pytest.raises(ReproError, match="device must be one of"):
            resolve_device("tpu")

    def test_unknown_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEVICE", "tpu")
        with pytest.raises(ReproError, match="REPRO_DEVICE must be one of"):
            resolve_device()

    @pytest.mark.skipif(cuda_available(), reason="cuda actually works here")
    def test_explicit_cuda_fails_loudly_with_reason_and_remedy(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEVICE", raising=False)
        with pytest.raises(ReproError) as err:
            resolve_device("cuda")
        message = str(err.value)
        assert cuda_unavailable_reason() in message
        assert "pip install .[gpu]" in message
        # the same request via the environment fails the same way
        monkeypatch.setenv("REPRO_DEVICE", "cuda")
        with pytest.raises(ReproError):
            resolve_device()


class TestArrayModule:
    def test_cpu_module_is_numpy(self):
        assert array_module("cpu") is np

    def test_module_for_host_arrays_is_numpy(self):
        assert module_for(np.zeros(3)) is np

    @pytest.mark.skipif(cuda_available(), reason="cuda actually works here")
    def test_cuda_module_unavailable_raises(self):
        with pytest.raises(ReproError, match="unavailable"):
            array_module("cuda")

    def test_unknown_device_raises(self):
        with pytest.raises(ReproError, match="unknown device"):
            array_module("mps")


class TestDeviceReport:
    def test_report_names_the_essentials(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEVICE", raising=False)
        rows = dict(device_report())
        assert rows["numpy"] == np.__version__
        assert "cupy" in rows
        assert rows["selected device"] in ("cpu", "cuda")
        if not cuda_available():
            assert rows["fallback reason"] == cuda_unavailable_reason()
            assert "unavailable" in rows["cuda"]

    def test_report_surfaces_an_impossible_request(self, monkeypatch):
        if cuda_available():
            pytest.skip("cuda actually works here")
        monkeypatch.setenv("REPRO_DEVICE", "cuda")
        rows = dict(device_report())
        assert rows["selected device"].startswith("error:")


class TestBackendResolution:
    def test_backend_defaults_to_the_probe(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEVICE", raising=False)
        backend = ArrayBackend()
        assert backend.device == ("cuda" if cuda_available() else "cpu")
        assert backend.is_cuda == cuda_available()

    def test_cpu_backend_binds_numpy(self):
        backend = ArrayBackend("cpu")
        assert backend.xp is np
        assert not backend.is_cuda
