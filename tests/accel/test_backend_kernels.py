"""ArrayBackend semantics and bit-identity of the xp-generic kernels.

The dispatch layer's contract on the CPU path is *exactness*: ``to_device``/
``to_host`` are identities (zero copies, zero counted bytes), the pooled
scratch buffers are plain reuses, and the xp-generic kernels reproduce the
frozen direct kernels bit-for-bit — including the rare paths (vacated-edge
segment-reduce fallback, CSR shared-net detection, asymmetric QAP column
sums, self-pairs).  The cupy-marked twins run the same assertions on a real
device and skip cleanly everywhere else.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accel import (
    ArrayBackend,
    cuda_available,
    fuse_admissible,
    masked_argmin,
)
from repro.metrics import TransferStats
from repro.placement import Layout, Placement, load_benchmark, random_placement
from repro.placement.wirelength import WirelengthState, deltas_for_swaps_reference
from repro.problems.qap.evaluator import (
    QAPEvaluator,
    deltas_for_swaps_reference as qap_reference,
)
from repro.problems.qap.instance import QAPInstance


# ---------------------------------------------------------------------- #
# backend mechanics
# ---------------------------------------------------------------------- #
class TestCpuBackendIsTheIdentity:
    def test_to_device_and_to_host_return_the_argument(self):
        backend = ArrayBackend("cpu")
        array = np.arange(5, dtype=np.float64)
        assert backend.to_device(array) is array
        assert backend.to_host(array) is array

    def test_no_transfers_are_counted(self):
        backend = ArrayBackend("cpu")
        backend.to_device(np.zeros(1000))
        backend.to_host(np.zeros(1000))
        stats = backend.transfer_stats()
        assert stats == TransferStats()
        assert stats.total_bytes == 0

    def test_reset_clears_the_counters(self):
        backend = ArrayBackend("cpu")
        backend.reset_transfer_stats()
        assert backend.transfer_stats() == TransferStats()


class TestScratchPool:
    def test_same_key_returns_the_same_buffer(self):
        backend = ArrayBackend("cpu")
        first = backend.scratch(("k", 4), (4, 8))
        assert backend.scratch(("k", 4), (4, 8)) is first
        assert backend.pool_size() == 1

    def test_shape_change_under_a_key_reallocates(self):
        backend = ArrayBackend("cpu")
        first = backend.scratch(("k",), (4, 8))
        second = backend.scratch(("k",), (2, 8))
        assert second is not first
        assert second.shape == (2, 8)

    def test_pool_is_bounded(self):
        backend = ArrayBackend("cpu")
        for i in range(backend.MAX_POOL_KEYS + 3):
            backend.scratch(("k", i), (2, 2))
        assert backend.pool_size() <= backend.MAX_POOL_KEYS

    def test_drop_scratch_empties_the_pool(self):
        backend = ArrayBackend("cpu")
        backend.scratch(("k",), (2, 2))
        backend.drop_scratch()
        assert backend.pool_size() == 0


class TestTransferStats:
    def test_merged_is_fieldwise_sum(self):
        first = TransferStats(
            bytes_to_device=10, bytes_to_host=20,
            transfers_to_device=1, transfers_to_host=2, seconds=0.5,
        )
        second = TransferStats(
            bytes_to_device=5, bytes_to_host=7,
            transfers_to_device=3, transfers_to_host=4, seconds=0.25,
        )
        merged = first.merged(second)
        assert merged.bytes_to_device == 15
        assert merged.bytes_to_host == 27
        assert merged.transfers_to_device == 4
        assert merged.transfers_to_host == 6
        assert merged.seconds == pytest.approx(0.75)
        assert merged.total_bytes == 42

    def test_as_dict_round_trips_the_fields(self):
        stats = TransferStats(bytes_to_device=1, transfers_to_device=1, seconds=0.1)
        d = stats.as_dict()
        assert d["bytes_to_device"] == 1
        assert d["transfers_to_device"] == 1
        assert d["seconds"] == pytest.approx(0.1)


# ---------------------------------------------------------------------- #
# the fused select
# ---------------------------------------------------------------------- #
class TestMaskedArgmin:
    def test_no_mask_is_plain_argmin(self):
        costs = np.array([3.0, 1.0, 2.0])
        assert masked_argmin(costs) == 1

    def test_mask_restricts_the_choice(self):
        costs = np.array([3.0, 1.0, 2.0])
        mask = np.array([True, False, True])
        assert masked_argmin(costs, mask) == 2

    def test_all_masked_out_falls_back_to_overall_best(self):
        costs = np.array([3.0, 1.0, 2.0])
        assert masked_argmin(costs, np.zeros(3, dtype=bool)) == 1

    def test_ties_break_toward_the_first_minimum(self):
        costs = np.array([2.0, 1.0, 1.0, 1.0])
        assert masked_argmin(costs) == 1
        mask = np.array([True, False, True, True])
        assert masked_argmin(costs, mask) == 2

    def test_fuse_admissible_truth_table(self):
        tabu = np.array([False, False, True, True])
        permits = np.array([False, True, False, True])
        assert fuse_admissible(tabu, permits).tolist() == [True, True, False, True]


# ---------------------------------------------------------------------- #
# kernel parity beyond the contract battery's instances
# ---------------------------------------------------------------------- #
def _asymmetric_instance(n: int = 16, seed: int = 7) -> QAPInstance:
    rng = np.random.default_rng(seed)
    flow = rng.uniform(0.0, 9.0, size=(n, n))
    distance = rng.uniform(0.0, 5.0, size=(n, n))
    return QAPInstance(name=f"asym{n}", flow=flow, distance=distance)


class TestQapKernelParity:
    def test_asymmetric_column_sum_branch_is_bit_identical(self):
        """rand/QAPLIB instances are symmetric, so the contract battery never
        reaches the column-sum branch — pin it here."""
        instance = _asymmetric_instance()
        assert not instance.is_symmetric
        rng = np.random.default_rng(8)
        assignment = rng.permutation(instance.n).astype(np.int64)
        evaluator = QAPEvaluator(instance, assignment, device="cpu")
        pairs = rng.integers(0, instance.n, size=(200, 2))
        pairs[::11, 1] = pairs[::11, 0]
        shipped = evaluator.deltas_for_swaps(pairs[:, 0], pairs[:, 1])
        oracle = qap_reference(evaluator, pairs[:, 0], pairs[:, 1])
        assert np.array_equal(shipped, oracle)

    def test_all_pairs_of_a_small_instance(self):
        instance = _asymmetric_instance(n=8, seed=9)
        rng = np.random.default_rng(10)
        assignment = rng.permutation(instance.n).astype(np.int64)
        evaluator = QAPEvaluator(instance, assignment, device="cpu")
        a, b = np.meshgrid(np.arange(8), np.arange(8))
        shipped = evaluator.deltas_for_swaps(a.ravel(), b.ravel())
        oracle = qap_reference(evaluator, a.ravel(), b.ravel())
        assert np.array_equal(shipped, oracle)
        # self-pairs are exactly zero, not merely tiny
        assert np.all(shipped[a.ravel() == b.ravel()] == 0.0)


class TestWirelengthKernelParity:
    def _state_and_pairs(self, incidence: str):
        layout = Layout(load_benchmark("mini64"))
        placement = random_placement(layout, seed=3)
        state = WirelengthState(placement, incidence=incidence, device="cpu")
        n = placement.num_cells
        a, b = np.meshgrid(np.arange(n), np.arange(n))
        return state, a.ravel().astype(np.int64), b.ravel().astype(np.int64)

    @pytest.mark.parametrize("incidence", ["dense", "csr"])
    def test_all_pairs_bit_identical_including_fallbacks(self, incidence):
        """All n² pairs of a 64-cell circuit inevitably include vacated-edge
        fallback trials and self-pairs, on both shared-net detection paths."""
        state, a, b = self._state_and_pairs(incidence)
        assert state.incidence_mode == incidence
        shipped = state.deltas_for_swaps(a, b)
        oracle = deltas_for_swaps_reference(state, a, b)
        assert np.array_equal(shipped, oracle)
        assert np.all(shipped[a == b] == 0.0)

    def test_parity_survives_committed_swaps(self):
        state, a, b = self._state_and_pairs("dense")
        placement = state._placement
        rng = np.random.default_rng(12)
        for _ in range(10):
            i, j = (int(x) for x in rng.integers(0, placement.num_cells, 2))
            placement.swap_cells(i, j)
            state.commit_swap(i, j)
        shipped = state.deltas_for_swaps(a, b)
        oracle = deltas_for_swaps_reference(state, a, b)
        assert np.array_equal(shipped, oracle)

    def test_cpu_state_reports_zero_traffic(self):
        state, a, b = self._state_and_pairs("dense")
        state.deltas_for_swaps(a[:500], b[:500])
        assert state.transfer_stats().total_bytes == 0
        assert state.device == "cpu"


# ---------------------------------------------------------------------- #
# cupy twins (skip cleanly without a device)
# ---------------------------------------------------------------------- #
cupy_only = pytest.mark.skipif(
    not cuda_available(), reason="cupy/CUDA device not available"
)


@cupy_only
class TestCudaBackend:  # pragma: no cover - requires a GPU
    def test_round_trip_preserves_values_and_counts_bytes(self):
        backend = ArrayBackend("cuda")
        array = np.arange(1024, dtype=np.float64)
        device = backend.to_device(array)
        back = backend.to_host(device)
        assert np.array_equal(back, array)
        stats = backend.transfer_stats()
        assert stats.bytes_to_device == array.nbytes
        assert stats.bytes_to_host == array.nbytes
        assert stats.transfers_to_device == 1
        assert stats.transfers_to_host == 1

    def test_qap_cuda_matches_reference(self):
        instance = _asymmetric_instance()
        rng = np.random.default_rng(8)
        assignment = rng.permutation(instance.n).astype(np.int64)
        shipped = QAPEvaluator(instance, assignment, device="cuda")
        oracle = QAPEvaluator(instance, assignment, device="cpu")
        pairs = rng.integers(0, instance.n, size=(100, 2))
        np.testing.assert_allclose(
            shipped.deltas_for_swaps(pairs[:, 0], pairs[:, 1]),
            qap_reference(oracle, pairs[:, 0], pairs[:, 1]),
            atol=1e-9,
            rtol=0.0,
        )

    def test_wirelength_cuda_matches_reference(self):
        layout = Layout(load_benchmark("mini64"))
        placement = random_placement(layout, seed=3)
        shipped = WirelengthState(placement, device="cuda")
        oracle = WirelengthState(placement, device="cpu")
        n = placement.num_cells
        a, b = np.meshgrid(np.arange(n), np.arange(n))
        np.testing.assert_allclose(
            shipped.deltas_for_swaps(a.ravel(), b.ravel()),
            deltas_for_swaps_reference(oracle, a.ravel(), b.ravel()),
            atol=2e-2,
            rtol=0.0,
        )
        assert shipped.transfer_stats().total_bytes > 0
