"""Tests of the shared-memory problem shipment (PR 3).

The multiprocessing backend ships the immutable ``PlacementProblem`` as a
shared-memory handle instead of a pickle; a restored problem must be
indistinguishable from the original, with its hot arrays backed by the shared
block (zero copies).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.parallel import PlacementProblem
from repro.problems.placement import restore_shared_problem
from repro.placement import load_benchmark
from repro.pvm.shm import (
    SharedArrayPack,
    SharedObjectRef,
    attach_arrays,
    export_shared,
)


@pytest.fixture(scope="module")
def problem():
    return PlacementProblem.from_netlist(load_benchmark("c532"), reference_seed=0)


def shm_probe_process(ctx, prob):
    """Worker body (module-level so the spawn context can pickle it).

    Returns whether the problem arrived shared-memory backed plus a cost
    computed through it, proving the restored object is fully functional.
    """
    shared_backed = prob.netlist.flat_members.base is not None
    cost = prob.make_evaluator(prob.random_solution(1)).cost()
    return shared_backed, float(cost)
    yield  # pragma: no cover - makes this a generator function


class TestSharedArrayPack:
    def test_pack_attach_roundtrip(self):
        arrays = {
            "ints": np.arange(17, dtype=np.int64),
            "floats": np.linspace(0.0, 1.0, 33),
            "bytes": np.arange(5, dtype=np.int8),
        }
        pack = SharedArrayPack(arrays)
        try:
            attached, block = attach_arrays(pack.block_name, pack.entries)
            try:
                for name, original in arrays.items():
                    assert np.array_equal(attached[name], original)
                    assert not attached[name].flags.writeable
            finally:
                block.close()
        finally:
            pack.close()
            pack.unlink()

    def test_empty_pack(self):
        pack = SharedArrayPack({})
        try:
            attached, block = attach_arrays(pack.block_name, pack.entries)
            assert attached == {}
            block.close()
        finally:
            pack.close()
            pack.unlink()

    def test_total_bytes_covers_arrays(self):
        arrays = {
            "a": np.arange(1000, dtype=np.int64),
            "b": np.zeros((64, 64), dtype=np.float64),
        }
        pack = SharedArrayPack(arrays)
        try:
            payload = sum(a.nbytes for a in arrays.values())
            assert pack.total_bytes >= payload
            # alignment pad is at most 63 bytes per array
            assert pack.total_bytes <= payload + 64 * len(arrays)
        finally:
            pack.close()
            pack.unlink()


class TestLargeInstanceShipping:
    """Multi-MB problems must ship as one shared block, not per-worker pickles."""

    def test_qap_rand256_ships_shared_with_tiny_ref(self):
        from repro.core.registry import get_domain

        problem = get_domain("qap").build_problem("rand256", reference_seed=0)
        exported = export_shared(problem)
        assert exported is not None
        ref, pack = exported
        try:
            matrices = 2 * 256 * 256 * 8  # flow + distance, float64
            assert pack.total_bytes >= matrices
            assert len(pickle.dumps(ref)) < 4096
        finally:
            pack.close()
            pack.unlink()


class TestSharedProblem:
    def test_ref_is_much_smaller_than_pickle(self, problem):
        exported = export_shared(problem)
        assert exported is not None
        ref, pack = exported
        try:
            assert isinstance(ref, SharedObjectRef)
            assert len(pickle.dumps(ref)) < len(pickle.dumps(problem)) / 4
        finally:
            pack.close()
            pack.unlink()

    def test_restored_problem_is_equivalent(self, problem):
        ref, pack = export_shared(problem)
        try:
            arrays, block = attach_arrays(ref.block_name, ref.entries)
            try:
                restored = restore_shared_problem(arrays, ref.meta)
                assert restored.netlist.stats().as_dict() == problem.netlist.stats().as_dict()
                assert restored.reference == problem.reference
                assert restored.cost_params == problem.cost_params
                # zero-copy: the hot arrays are views into the shared block
                assert restored.netlist.flat_members.base is not None
                assert restored.layout.slot_x.base is not None

                solution = problem.random_solution(3)
                original_eval = problem.make_evaluator(solution)
                restored_eval = restored.make_evaluator(solution)
                assert restored_eval.cost() == original_eval.cost()

                rng = np.random.default_rng(0)
                pairs = rng.integers(0, problem.num_cells, size=(64, 2))
                assert np.array_equal(
                    restored_eval.evaluate_swaps_batch(pairs),
                    original_eval.evaluate_swaps_batch(pairs),
                )
                for cell_a, cell_b in pairs[:8].tolist():
                    assert restored_eval.commit_swap(cell_a, cell_b) == (
                        original_eval.commit_swap(cell_a, cell_b)
                    )
                restored_eval.verify_consistency()
            finally:
                block.close()
        finally:
            pack.close()
            pack.unlink()

    def test_process_kernel_exports_once_per_problem(self, problem):
        """Spawning several workers with the same problem shares one block."""
        from repro.pvm import homogeneous_cluster
        from repro.pvm.process_backend import ProcessKernel

        kernel = ProcessKernel(homogeneous_cluster(2))
        try:
            pids = [
                kernel.spawn(shm_probe_process, problem, name=f"probe{i}")
                for i in range(2)
            ]
            kernel.join_all(timeout=120.0)
            expected = problem.make_evaluator(problem.random_solution(1)).cost()
            for pid in pids:
                shared_backed, cost = kernel.result_of(pid)
                assert shared_backed
                assert cost == pytest.approx(expected, abs=1e-12)
            assert len(kernel._shm_packs) == 1  # one export serves every spawn
        finally:
            kernel.shutdown()
