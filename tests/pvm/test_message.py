"""Unit tests for messages and payload size estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pvm import Message, estimate_payload_bytes


class TestMessageMatching:
    def make(self, tag="data", src=1):
        return Message(
            src=src, dst=2, tag=tag, payload=None, size_bytes=8, send_time=0.0, arrival_time=0.1
        )

    def test_match_any(self):
        assert self.make().matches()

    def test_match_by_tag(self):
        assert self.make(tag="result").matches(tag="result")
        assert not self.make(tag="result").matches(tag="other")

    def test_match_by_src(self):
        assert self.make(src=3).matches(src=3)
        assert not self.make(src=3).matches(src=4)

    def test_match_by_both(self):
        message = self.make(tag="result", src=3)
        assert message.matches(tag="result", src=3)
        assert not message.matches(tag="result", src=4)


class TestPayloadSizeEstimation:
    def test_numpy_array_dominates(self):
        small = estimate_payload_bytes(np.zeros(10, dtype=np.int64))
        large = estimate_payload_bytes(np.zeros(10_000, dtype=np.int64))
        assert large > small
        assert large >= 80_000

    def test_none_and_scalars_are_small(self):
        assert estimate_payload_bytes(None) < 64
        assert estimate_payload_bytes(42) < 64
        assert estimate_payload_bytes(3.14) < 64

    def test_strings_and_bytes(self):
        assert estimate_payload_bytes("x" * 100) >= 100
        assert estimate_payload_bytes(b"x" * 100) >= 100

    def test_containers_recurse(self):
        payload = {"solution": np.zeros(1000, dtype=np.int64), "cost": 0.5}
        assert estimate_payload_bytes(payload) >= 8000

    def test_objects_with_dict_recurse(self):
        class Payload:
            def __init__(self):
                self.solution = np.zeros(500, dtype=np.int64)
                self.cost = 1.0

        assert estimate_payload_bytes(Payload()) >= 4000

    def test_lists_and_tuples(self):
        assert estimate_payload_bytes([1, 2, 3]) > estimate_payload_bytes([1])
        assert estimate_payload_bytes((1.0, 2.0)) >= 32
