"""Unit tests for machines and cluster specifications."""

from __future__ import annotations

import pytest

from repro.errors import ClusterError
from repro.pvm import (
    ClusterSpec,
    MachineSpec,
    SpeedClass,
    heterogeneous_cluster,
    homogeneous_cluster,
    paper_cluster,
)


class TestMachineSpec:
    def test_effective_rate_accounts_for_load(self):
        machine = MachineSpec(name="m", speed_factor=1.0, load=1.0)
        assert machine.effective_rate == pytest.approx(0.5)

    def test_of_class_uses_default_speed(self):
        machine = MachineSpec.of_class("m", SpeedClass.MEDIUM)
        assert machine.speed_factor == pytest.approx(SpeedClass.MEDIUM.default_speed)

    def test_speed_class_ordering(self):
        assert SpeedClass.HIGH.default_speed > SpeedClass.MEDIUM.default_speed
        assert SpeedClass.MEDIUM.default_speed > SpeedClass.LOW.default_speed

    def test_invalid_speed_rejected(self):
        with pytest.raises(ClusterError):
            MachineSpec(name="m", speed_factor=0.0)

    def test_negative_load_rejected(self):
        with pytest.raises(ClusterError):
            MachineSpec(name="m", load=-0.1)


class TestClusterSpec:
    def test_needs_at_least_one_machine(self):
        with pytest.raises(ClusterError):
            ClusterSpec(machines=())

    def test_duplicate_machine_names_rejected(self):
        machines = (MachineSpec(name="m"), MachineSpec(name="m"))
        with pytest.raises(ClusterError):
            ClusterSpec(machines=machines)

    def test_compute_seconds_scales_with_speed(self):
        cluster = heterogeneous_cluster(num_high=1, num_medium=0, num_low=1)
        fast = cluster.compute_seconds(0, 100.0)
        slow = cluster.compute_seconds(1, 100.0)
        assert slow > fast

    def test_machine_index_wraps_around(self):
        cluster = homogeneous_cluster(3)
        assert cluster.machine(5).name == cluster.machine(2).name

    def test_transfer_seconds_grows_with_size(self):
        cluster = homogeneous_cluster(2)
        assert cluster.transfer_seconds(100_000) > cluster.transfer_seconds(100)
        assert cluster.transfer_seconds(0) == pytest.approx(cluster.message_latency)


class TestClusterFactories:
    def test_paper_cluster_composition(self):
        cluster = paper_cluster()
        assert cluster.num_machines == 12
        summary = cluster.speed_summary()
        assert summary == {"high": 7, "medium": 3, "low": 2}

    def test_paper_cluster_deterministic(self):
        a = paper_cluster(seed=1)
        b = paper_cluster(seed=1)
        assert [m.load for m in a.machines] == [m.load for m in b.machines]

    def test_paper_cluster_has_load_jitter(self):
        cluster = paper_cluster(load_jitter=0.3)
        loads = [m.load for m in cluster.machines]
        assert max(loads) > 0.0

    def test_homogeneous_cluster_identical_machines(self):
        cluster = homogeneous_cluster(5)
        rates = {m.effective_rate for m in cluster.machines}
        assert len(rates) == 1

    def test_homogeneous_cluster_invalid_size(self):
        with pytest.raises(ClusterError):
            homogeneous_cluster(0)

    def test_heterogeneous_cluster_counts(self):
        cluster = heterogeneous_cluster(num_high=2, num_medium=1, num_low=1)
        assert cluster.num_machines == 4
        assert cluster.speed_summary() == {"high": 2, "medium": 1, "low": 1}

    def test_heterogeneous_cluster_empty_rejected(self):
        with pytest.raises(ClusterError):
            heterogeneous_cluster(num_high=0, num_medium=0, num_low=0)
