"""Unit tests for the real-thread backend running the same process code."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.pvm import ThreadKernel, homogeneous_cluster


def make_kernel() -> ThreadKernel:
    return ThreadKernel(homogeneous_cluster(4))


class TestThreadKernel:
    def test_send_recv_round_trip(self):
        def child(ctx):
            message = yield ctx.recv(tag="ping")
            yield ctx.send(message.src, "pong", message.payload + 1)
            return "ok"

        def parent(ctx):
            child_pid = yield ctx.spawn(child, name="child")
            yield ctx.send(child_pid, "ping", 1)
            reply = yield ctx.recv(tag="pong")
            return reply.payload

        kernel = make_kernel()
        pid = kernel.spawn(parent, name="parent")
        kernel.join_all(timeout=10.0)
        assert kernel.result_of(pid) == 2

    def test_compute_is_noop_but_allowed(self):
        def proc(ctx):
            yield ctx.compute(1000.0)
            return "done"

        kernel = make_kernel()
        pid = kernel.spawn(proc)
        kernel.join(pid, timeout=10.0)
        assert kernel.result_of(pid) == "done"

    def test_fan_out_fan_in(self):
        def worker(ctx, value):
            yield ctx.compute(1.0)
            yield ctx.send(ctx.parent, "result", value * value)
            return None

        def parent(ctx, count):
            for value in range(count):
                yield ctx.spawn(worker, value)
            total = 0
            for _ in range(count):
                message = yield ctx.recv(tag="result")
                total += message.payload
            return total

        kernel = make_kernel()
        pid = kernel.spawn(parent, 5, name="parent")
        kernel.join_all(timeout=10.0)
        assert kernel.result_of(pid) == sum(v * v for v in range(5))

    def test_probe_and_timeout(self):
        def proc(ctx):
            nothing = yield ctx.probe(tag="never")
            timed_out = yield ctx.recv_timeout(0.05, tag="never")
            return (nothing, timed_out)

        kernel = make_kernel()
        pid = kernel.spawn(proc)
        kernel.join(pid, timeout=10.0)
        assert kernel.result_of(pid) == (None, None)

    def test_process_error_reported_on_result(self):
        def bad(ctx):
            yield ctx.compute(1.0)
            raise RuntimeError("kaput")

        kernel = make_kernel()
        pid = kernel.spawn(bad)
        kernel.join(pid, timeout=10.0)
        with pytest.raises(ProcessError):
            kernel.result_of(pid)

    def test_non_generator_rejected(self):
        def not_a_generator(ctx):
            return 1

        kernel = make_kernel()
        with pytest.raises(ProcessError, match="generator"):
            kernel.spawn(not_a_generator)

    def test_unknown_pid(self):
        kernel = make_kernel()
        with pytest.raises(ProcessError, match="unknown"):
            kernel.result_of(123)

    def test_now_increases(self):
        kernel = make_kernel()
        first = kernel.now
        assert kernel.now >= first >= 0.0

    def test_join_all_includes_workers_spawned_while_joining(self):
        """Regression: join_all used to snapshot the record table once, so a
        worker spawned after the snapshot (the master→TSW→CLW pattern) was
        never joined and could still be running when join_all returned."""
        import time as _time

        def late_child(ctx):
            _time.sleep(0.25)  # real work happens inside the body on this backend
            yield ctx.compute(1.0)
            return "late"

        def parent(ctx):
            _time.sleep(0.2)
            child_pid = yield ctx.spawn(late_child, name="late_child")
            return child_pid

        kernel = make_kernel()
        parent_pid = kernel.spawn(parent, name="parent")
        kernel.join_all(timeout=10.0)
        child_pid = kernel.result_of(parent_pid)
        # must not raise "has not finished": the late child was joined too
        assert kernel.result_of(child_pid) == "late"

    def test_join_all_overall_deadline(self):
        import time as _time

        def sleeper(ctx):
            _time.sleep(30.0)  # real delay; ctx.sleep is a no-op on this backend
            yield ctx.compute(1.0)
            return None

        kernel = make_kernel()
        for _ in range(3):
            kernel.spawn(sleeper)
        start = _time.monotonic()
        with pytest.raises(ProcessError):
            kernel.join_all(timeout=0.3)
        # one overall deadline for the whole join, not 0.3 s per worker
        assert _time.monotonic() - start < 5.0

    def test_join_all_fails_fast_after_a_worker_error(self):
        """A dead worker usually leaves the survivors blocked on messages that
        will never arrive; join_all must abort after the failure grace instead
        of waiting out the whole deadline."""
        import time as _time

        def failing(ctx):
            yield ctx.compute(1.0)
            raise RuntimeError("kaput")

        def stuck(ctx):
            yield ctx.recv(tag="never-sent")
            return None

        kernel = make_kernel()
        kernel.failure_grace = 0.5
        kernel.spawn(stuck, name="stuck")
        kernel.spawn(failing, name="failing")
        start = _time.monotonic()
        with pytest.raises(ProcessError, match="failing"):
            kernel.join_all(timeout=60.0)
        assert _time.monotonic() - start < 10.0
