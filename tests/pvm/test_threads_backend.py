"""Unit tests for the real-thread backend running the same process code."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.pvm import ThreadKernel, homogeneous_cluster


def make_kernel() -> ThreadKernel:
    return ThreadKernel(homogeneous_cluster(4))


class TestThreadKernel:
    def test_send_recv_round_trip(self):
        def child(ctx):
            message = yield ctx.recv(tag="ping")
            yield ctx.send(message.src, "pong", message.payload + 1)
            return "ok"

        def parent(ctx):
            child_pid = yield ctx.spawn(child, name="child")
            yield ctx.send(child_pid, "ping", 1)
            reply = yield ctx.recv(tag="pong")
            return reply.payload

        kernel = make_kernel()
        pid = kernel.spawn(parent, name="parent")
        kernel.join_all(timeout=10.0)
        assert kernel.result_of(pid) == 2

    def test_compute_is_noop_but_allowed(self):
        def proc(ctx):
            yield ctx.compute(1000.0)
            return "done"

        kernel = make_kernel()
        pid = kernel.spawn(proc)
        kernel.join(pid, timeout=10.0)
        assert kernel.result_of(pid) == "done"

    def test_fan_out_fan_in(self):
        def worker(ctx, value):
            yield ctx.compute(1.0)
            yield ctx.send(ctx.parent, "result", value * value)
            return None

        def parent(ctx, count):
            for value in range(count):
                yield ctx.spawn(worker, value)
            total = 0
            for _ in range(count):
                message = yield ctx.recv(tag="result")
                total += message.payload
            return total

        kernel = make_kernel()
        pid = kernel.spawn(parent, 5, name="parent")
        kernel.join_all(timeout=10.0)
        assert kernel.result_of(pid) == sum(v * v for v in range(5))

    def test_probe_and_timeout(self):
        def proc(ctx):
            nothing = yield ctx.probe(tag="never")
            timed_out = yield ctx.recv_timeout(0.05, tag="never")
            return (nothing, timed_out)

        kernel = make_kernel()
        pid = kernel.spawn(proc)
        kernel.join(pid, timeout=10.0)
        assert kernel.result_of(pid) == (None, None)

    def test_process_error_reported_on_result(self):
        def bad(ctx):
            yield ctx.compute(1.0)
            raise RuntimeError("kaput")

        kernel = make_kernel()
        pid = kernel.spawn(bad)
        kernel.join(pid, timeout=10.0)
        with pytest.raises(ProcessError):
            kernel.result_of(pid)

    def test_non_generator_rejected(self):
        def not_a_generator(ctx):
            return 1

        kernel = make_kernel()
        with pytest.raises(ProcessError, match="generator"):
            kernel.spawn(not_a_generator)

    def test_unknown_pid(self):
        kernel = make_kernel()
        with pytest.raises(ProcessError, match="unknown"):
            kernel.result_of(123)

    def test_now_increases(self):
        kernel = make_kernel()
        first = kernel.now
        assert kernel.now >= first >= 0.0
