"""Unit tests for the real-OS-process backend running the same process code.

The process bodies live at module level because the spawn context ships them
to the workers by pickled module reference.
"""

from __future__ import annotations

import queue as queue_module
import time

import pytest

from repro.errors import ProcessError
from repro.pvm import ProcessKernel, homogeneous_cluster
from repro.pvm.message import Message
from repro.pvm.process_backend import _QueueMailbox


# --------------------------------------------------------------------------- #
# process bodies (must be module-level for the spawn context)
# --------------------------------------------------------------------------- #
def echo_child(ctx):
    message = yield ctx.recv(tag="ping")
    yield ctx.send(message.src, "pong", message.payload + 1)
    return "ok"


def echo_parent(ctx):
    child_pid = yield ctx.spawn(echo_child, name="child")
    yield ctx.send(child_pid, "ping", 1)
    reply = yield ctx.recv(tag="pong")
    return reply.payload


def square_worker(ctx, value):
    yield ctx.compute(1.0)
    yield ctx.send(ctx.parent, "result", value * value)
    return None


def fan_out_parent(ctx, count):
    for value in range(count):
        yield ctx.spawn(square_worker, value)
    total = 0
    for _ in range(count):
        message = yield ctx.recv(tag="result")
        total += message.payload
    return total


def probing_proc(ctx):
    nothing = yield ctx.probe(tag="never")
    timed_out = yield ctx.recv_timeout(0.05, tag="never")
    return (nothing, timed_out)


def failing_proc(ctx):
    yield ctx.compute(1.0)
    raise RuntimeError("kaput")


def unpicklable_result_proc(ctx):
    yield ctx.compute(1.0)
    return lambda: None  # lambdas do not pickle


def sleeper_proc(ctx, seconds):
    yield ctx.sleep(seconds)
    return "slept"


def hard_dying_proc(ctx):
    import os

    yield ctx.compute(1.0)
    os._exit(3)  # simulates a crash: the exit message is never sent


def stuck_proc(ctx):
    yield ctx.recv(tag="never-sent")
    return None


def not_a_generator(ctx):
    return 1


def make_kernel() -> ProcessKernel:
    return ProcessKernel(homogeneous_cluster(4))


class TestProcessKernel:
    def test_send_recv_round_trip_with_spawn(self):
        with make_kernel() as kernel:
            pid = kernel.spawn(echo_parent, name="parent")
            # The child is spawned *while* join_all runs — the re-scanning
            # join must pick it up too.
            kernel.join_all(timeout=60.0)
            assert kernel.result_of(pid) == 2

    def test_fan_out_fan_in(self):
        with make_kernel() as kernel:
            pid = kernel.spawn(fan_out_parent, 3, name="parent")
            kernel.join_all(timeout=60.0)
            assert kernel.result_of(pid) == sum(v * v for v in range(3))

    def test_probe_and_timeout(self):
        with make_kernel() as kernel:
            pid = kernel.spawn(probing_proc)
            kernel.join(pid, timeout=60.0)
            assert kernel.result_of(pid) == (None, None)

    def test_process_error_reported_on_result(self):
        with make_kernel() as kernel:
            pid = kernel.spawn(failing_proc)
            kernel.join(pid, timeout=60.0)
            with pytest.raises(ProcessError):
                kernel.result_of(pid)

    def test_unpicklable_result_degrades_to_error(self):
        with make_kernel() as kernel:
            pid = kernel.spawn(unpicklable_result_proc)
            kernel.join(pid, timeout=60.0)
            with pytest.raises(ProcessError):
                kernel.result_of(pid)

    def test_non_generator_rejected(self):
        with make_kernel() as kernel:
            with pytest.raises(ProcessError, match="generator"):
                kernel.spawn(not_a_generator)

    def test_unknown_pid(self):
        with make_kernel() as kernel:
            with pytest.raises(ProcessError, match="unknown"):
                kernel.result_of(123)

    def test_join_all_overall_deadline(self):
        with make_kernel() as kernel:
            kernel.spawn(sleeper_proc, 60.0)
            start = time.monotonic()
            with pytest.raises(ProcessError):
                kernel.join_all(timeout=0.5)
            # one overall deadline, not one allowance per worker
            assert time.monotonic() - start < 30.0

    def test_hard_death_fails_join_all_fast(self):
        """A worker that dies without reporting must be detected within the
        death-report grace, and join_all must then abort within the failure
        grace instead of burning the whole deadline."""
        with make_kernel() as kernel:
            kernel.death_report_grace = 0.5
            kernel.failure_grace = 0.5
            kernel.spawn(stuck_proc, name="stuck")
            dead_pid = kernel.spawn(hard_dying_proc, name="crasher")
            start = time.monotonic()
            with pytest.raises(ProcessError, match="crasher"):
                kernel.join_all(timeout=60.0)
            assert time.monotonic() - start < 30.0
            with pytest.raises(ProcessError):
                kernel.result_of(dead_pid)

    def test_now_increases(self):
        kernel = make_kernel()
        try:
            first = kernel.now
            assert kernel.now >= first >= 0.0
        finally:
            kernel.shutdown()

    def test_spawn_after_shutdown_rejected(self):
        kernel = make_kernel()
        kernel.shutdown()
        with pytest.raises(ProcessError, match="shut down"):
            kernel.spawn(sleeper_proc, 0.0)


class TestQueueMailbox:
    """Filter semantics of the worker-side mailbox (no processes involved)."""

    @staticmethod
    def message(src: int, tag: str, payload=None) -> Message:
        return Message(
            src=src, dst=9, tag=tag, payload=payload, size_bytes=8,
            send_time=0.0, arrival_time=0.0,
        )

    def test_non_matching_messages_are_buffered_in_order(self):
        inbox: queue_module.Queue = queue_module.Queue()
        mailbox = _QueueMailbox(inbox)
        inbox.put(self.message(1, "other", "first"))
        inbox.put(self.message(2, "wanted", "hit"))
        inbox.put(self.message(1, "other", "second"))
        got = mailbox.get(tag="wanted", src=None, blocking=True, timeout=1.0)
        assert got.payload == "hit"
        # buffered messages are served later, preserving arrival order
        first = mailbox.get(tag="other", src=None, blocking=False, timeout=None)
        second = mailbox.get(tag="other", src=None, blocking=False, timeout=None)
        assert (first.payload, second.payload) == ("first", "second")

    def test_src_filter(self):
        inbox: queue_module.Queue = queue_module.Queue()
        mailbox = _QueueMailbox(inbox)
        inbox.put(self.message(1, "t", "from-1"))
        inbox.put(self.message(2, "t", "from-2"))
        got = mailbox.get(tag="t", src=2, blocking=True, timeout=1.0)
        assert got.payload == "from-2"

    def test_blocking_timeout_returns_none(self):
        mailbox = _QueueMailbox(queue_module.Queue())
        assert mailbox.get(tag="t", src=None, blocking=True, timeout=0.05) is None

    def test_probe_returns_none_when_empty(self):
        mailbox = _QueueMailbox(queue_module.Queue())
        assert mailbox.get(tag=None, src=None, blocking=False, timeout=None) is None
