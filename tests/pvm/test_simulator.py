"""Unit tests for the discrete-event kernel (virtual time, messaging, faults)."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError, SimulationError
from repro.pvm import (
    ClusterSpec,
    MachineSpec,
    ProcessState,
    SimKernel,
    SpeedClass,
    heterogeneous_cluster,
    homogeneous_cluster,
)


def make_kernel(num_machines: int = 4) -> SimKernel:
    return SimKernel(homogeneous_cluster(num_machines))


class TestCompute:
    def test_compute_advances_virtual_time(self):
        def proc(ctx):
            yield ctx.compute(100.0)
            return (yield ctx.now())

        kernel = make_kernel()
        pid = kernel.spawn(proc, name="p")
        kernel.run()
        expected = kernel.cluster.compute_seconds(0, 100.0)
        assert kernel.result_of(pid) == pytest.approx(expected)

    def test_slow_machine_takes_longer(self):
        def proc(ctx):
            yield ctx.compute(100.0)
            return (yield ctx.now())

        cluster = heterogeneous_cluster(num_high=1, num_medium=0, num_low=1)
        kernel = SimKernel(cluster)
        fast = kernel.spawn(proc, name="fast", machine_index=0)
        slow = kernel.spawn(proc, name="slow", machine_index=1)
        kernel.run()
        assert kernel.result_of(slow) > kernel.result_of(fast)

    def test_sleep_advances_time_without_work(self):
        def proc(ctx):
            yield ctx.sleep(1.5)
            return (yield ctx.now())

        kernel = make_kernel()
        pid = kernel.spawn(proc)
        stats = kernel.run()
        assert kernel.result_of(pid) == pytest.approx(1.5)
        assert stats.total_work_units == 0.0


class TestMessaging:
    def test_send_recv_round_trip(self):
        def child(ctx):
            message = yield ctx.recv(tag="ping")
            yield ctx.send(message.src, "pong", message.payload * 2)
            return "child-done"

        def parent(ctx):
            child_pid = yield ctx.spawn(child, name="child")
            yield ctx.send(child_pid, "ping", 21)
            reply = yield ctx.recv(tag="pong")
            return reply.payload

        kernel = make_kernel()
        pid = kernel.spawn(parent, name="parent")
        kernel.run()
        assert kernel.result_of(pid) == 42

    def test_message_time_includes_latency(self):
        def receiver(ctx):
            message = yield ctx.recv()
            return (yield ctx.now())

        def sender(ctx, dst):
            yield ctx.send(dst, "data", list(range(100)))
            return None

        kernel = make_kernel()
        recv_pid = kernel.spawn(receiver, name="recv")
        kernel.spawn(sender, recv_pid, name="send")
        kernel.run()
        assert kernel.result_of(recv_pid) >= kernel.cluster.message_latency

    def test_tag_filtering_orders_messages(self):
        def receiver(ctx):
            second = yield ctx.recv(tag="b")
            first = yield ctx.recv(tag="a")
            return (first.payload, second.payload)

        def sender(ctx, dst):
            yield ctx.send(dst, "a", "first")
            yield ctx.send(dst, "b", "second")
            return None

        kernel = make_kernel()
        recv_pid = kernel.spawn(receiver, name="recv")
        kernel.spawn(sender, recv_pid, name="send")
        kernel.run()
        assert kernel.result_of(recv_pid) == ("first", "second")

    def test_probe_returns_none_when_empty(self):
        def proc(ctx):
            return (yield ctx.probe(tag="nothing"))

        kernel = make_kernel()
        pid = kernel.spawn(proc)
        kernel.run()
        assert kernel.result_of(pid) is None

    def test_recv_timeout_expires(self):
        def proc(ctx):
            message = yield ctx.recv_timeout(0.5, tag="never")
            return (message, (yield ctx.now()))

        kernel = make_kernel()
        pid = kernel.spawn(proc)
        kernel.run()
        message, now = kernel.result_of(pid)
        assert message is None
        assert now == pytest.approx(0.5)

    def test_recv_timeout_cancelled_by_message(self):
        def receiver(ctx):
            message = yield ctx.recv_timeout(10.0, tag="data")
            return message.payload

        def sender(ctx, dst):
            yield ctx.compute(10.0)
            yield ctx.send(dst, "data", "hello")
            return None

        kernel = make_kernel()
        recv_pid = kernel.spawn(receiver, name="recv")
        kernel.spawn(sender, recv_pid, name="send")
        kernel.run()
        assert kernel.result_of(recv_pid) == "hello"

    def test_send_to_finished_process_is_dropped(self):
        def quick(ctx):
            yield ctx.compute(1.0)
            return "done"

        def late_sender(ctx, dst):
            yield ctx.compute(1000.0)
            yield ctx.send(dst, "late", 1)
            return "sent"

        kernel = make_kernel()
        quick_pid = kernel.spawn(quick, name="quick")
        sender_pid = kernel.spawn(late_sender, quick_pid, name="late")
        kernel.run()
        assert kernel.result_of(sender_pid) == "sent"


class TestSpawnAndPlacement:
    def test_round_robin_machine_assignment(self):
        def child(ctx):
            yield ctx.compute(1.0)
            return ctx.machine_index

        def parent(ctx, count):
            pids = []
            for _ in range(count):
                pids.append((yield ctx.spawn(child)))
            return pids

        kernel = SimKernel(homogeneous_cluster(3))
        pid = kernel.spawn(parent, 5, name="parent", machine_index=0)
        kernel.run()
        children = kernel.result_of(pid)
        machine_indices = [kernel.process_info(c).machine_index for c in children]
        assert len(set(machine_indices)) == 3  # spread over all machines

    def test_spawn_overhead_delays_child_start(self):
        def child(ctx):
            return (yield ctx.now())

        def parent(ctx):
            return (yield ctx.spawn(child, name="child"))

        kernel = make_kernel()
        parent_pid = kernel.spawn(parent, name="parent")
        kernel.run()
        child_pid = kernel.result_of(parent_pid)
        assert kernel.result_of(child_pid) >= kernel.cluster.spawn_overhead


class TestFaults:
    def test_deadlock_detected(self):
        def stuck(ctx):
            yield ctx.recv(tag="never")

        kernel = make_kernel()
        kernel.spawn(stuck, name="stuck")
        with pytest.raises(SimulationError, match="deadlock"):
            kernel.run()

    def test_process_exception_surfaces(self):
        def bad(ctx):
            yield ctx.compute(1.0)
            raise ValueError("boom")

        kernel = make_kernel()
        kernel.spawn(bad, name="bad")
        with pytest.raises(ProcessError, match="boom"):
            kernel.run()

    def test_non_generator_process_rejected(self):
        def not_a_generator(ctx):
            return 42

        kernel = make_kernel()
        with pytest.raises(ProcessError, match="generator"):
            kernel.spawn(not_a_generator)

    def test_yielding_non_syscall_fails(self):
        def bad(ctx):
            yield "not a syscall"

        kernel = make_kernel()
        kernel.spawn(bad, name="bad")
        with pytest.raises(ProcessError, match="expected a Syscall"):
            kernel.run()

    def test_result_of_unknown_pid(self):
        kernel = make_kernel()
        with pytest.raises(ProcessError, match="unknown process"):
            kernel.result_of(99)

    def test_event_budget_guard(self):
        def ping_pong(ctx, peer_holder):
            while True:
                yield ctx.send(ctx.pid, "self", None)
                yield ctx.recv(tag="self")

        kernel = SimKernel(homogeneous_cluster(1), max_events=500)
        kernel.spawn(ping_pong, None, name="looper")
        with pytest.raises(SimulationError, match="event budget"):
            kernel.run()


class TestStatsAndDeterminism:
    def scenario(self, kernel: SimKernel) -> float:
        def child(ctx, work):
            yield ctx.compute(work)
            yield ctx.send(ctx.parent, "done", ctx.pid)
            return None

        def parent(ctx):
            for index in range(4):
                yield ctx.spawn(child, 50.0 * (index + 1), name=f"c{index}")
            order = []
            for _ in range(4):
                message = yield ctx.recv(tag="done")
                order.append(message.payload)
            return order

        pid = kernel.spawn(parent, name="parent", machine_index=0)
        kernel.run()
        return kernel.result_of(pid)

    def test_stats_populated(self):
        kernel = make_kernel()
        self.scenario(kernel)
        stats = kernel.stats()
        assert stats.virtual_makespan > 0
        assert stats.total_messages == 4
        assert stats.total_work_units == pytest.approx(50 + 100 + 150 + 200)
        assert stats.num_processes == 5
        assert len(stats.per_machine_busy) == kernel.cluster.num_machines
        assert all(0 <= u <= 1 for u in stats.machine_utilisation())

    def test_children_finish_in_work_order_on_identical_machines(self):
        kernel = make_kernel(num_machines=8)
        order = self.scenario(kernel)
        # children were given increasing work, so completion order equals spawn order
        assert order == sorted(order)

    def test_identical_runs_are_identical(self):
        order_a = self.scenario(make_kernel())
        order_b = self.scenario(make_kernel())
        assert order_a == order_b

    def test_all_processes_listed(self):
        kernel = make_kernel()
        self.scenario(kernel)
        infos = kernel.all_processes()
        assert len(infos) == 5
        assert all(info.state is ProcessState.FINISHED for info in infos)
