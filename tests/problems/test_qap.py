"""Unit tests of the QAP domain: instances, QAPLIB I/O, the delta kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ReproError
from repro.problems.qap import (
    QAPEvaluator,
    QAPInstance,
    QAPProblem,
    build_qap_problem,
    format_qaplib,
    generate_qap,
    load_qap,
    parse_qaplib,
    read_qaplib,
    write_qaplib,
)


class TestInstance:
    def test_rejects_non_square_flow(self):
        with pytest.raises(ReproError):
            QAPInstance(name="bad", flow=np.zeros((3, 2)), distance=np.zeros((3, 3)))

    def test_rejects_mismatched_distance(self):
        with pytest.raises(ReproError):
            QAPInstance(name="bad", flow=np.zeros((3, 3)), distance=np.zeros((4, 4)))

    def test_cost_of_identity_and_permuted(self):
        flow = np.array([[0.0, 2.0], [3.0, 0.0]])
        distance = np.array([[0.0, 5.0], [7.0, 0.0]])
        instance = QAPInstance(name="two", flow=flow, distance=distance)
        # identity: F[0,1]*D[0,1] + F[1,0]*D[1,0] = 2*5 + 3*7 = 31
        assert instance.cost_of(np.array([0, 1])) == 31.0
        # swapped: 2*7 + 3*5 = 29
        assert instance.cost_of(np.array([1, 0])) == 29.0

    def test_symmetry_detection(self):
        sym = generate_qap(10, seed=0, symmetric=True)
        asym = generate_qap(10, seed=0, symmetric=False)
        assert sym.is_symmetric
        assert not asym.is_symmetric


class TestQaplibFormat:
    def test_roundtrip(self, tmp_path):
        original = generate_qap(12, seed=4, symmetric=False)
        path = tmp_path / "inst.dat"
        write_qaplib(original, path)
        restored = read_qaplib(path)
        assert restored.name == "inst"
        assert np.array_equal(restored.flow, original.flow)
        assert np.array_equal(restored.distance, original.distance)

    def test_parse_is_insensitive_to_line_breaks(self):
        instance = parse_qaplib("2\n0 1\n1 0\n0 3\n3 0", name="a")
        same = parse_qaplib("2 0 1 1 0 0 3 3 0", name="a")
        assert np.array_equal(instance.flow, same.flow)
        assert np.array_equal(instance.distance, same.distance)

    def test_parse_errors(self):
        with pytest.raises(ReproError):
            parse_qaplib("")
        with pytest.raises(ReproError):
            parse_qaplib("2 0 1 1 0 0 3 3")  # one number short
        with pytest.raises(ReproError):
            parse_qaplib("2 0 x 1 0 0 3 3 0")  # non-numeric
        with pytest.raises(ReproError):
            parse_qaplib("1 0 0")  # n too small

    def test_format_preserves_integers(self):
        text = format_qaplib(generate_qap(5, seed=1))
        assert "." not in text  # integer matrices stay integers on disk


class TestGeneratorAndLoader:
    def test_generator_is_deterministic(self):
        first = generate_qap(20, seed=3)
        second = generate_qap(20, seed=3)
        assert np.array_equal(first.flow, second.flow)
        assert np.array_equal(first.distance, second.distance)
        assert not np.array_equal(first.flow, generate_qap(20, seed=4).flow)

    def test_distances_are_a_metric_grid(self):
        instance = generate_qap(9, seed=0)
        distance = instance.distance
        assert np.array_equal(distance, distance.T)
        assert np.all(np.diag(distance) == 0.0)
        # triangle inequality on the Manhattan grid
        for i in range(9):
            for j in range(9):
                assert distance[i, j] <= distance[i, 0] + distance[0, j] + 1e-12

    def test_load_by_name_and_seed(self):
        assert load_qap("rand16").n == 16
        assert load_qap("rand16-s2").name == "rand16-s2"
        assert not np.array_equal(load_qap("rand16").flow, load_qap("rand16-s2").flow)

    def test_load_passthrough_and_file(self, tmp_path):
        instance = generate_qap(8, seed=0)
        assert load_qap(instance) is instance
        path = tmp_path / "x.dat"
        write_qaplib(instance, path)
        assert load_qap(str(path)).n == 8

    def test_load_unknown_spec(self):
        with pytest.raises(ReproError):
            load_qap("nug9000")
        with pytest.raises(ReproError):
            load_qap("missing-file.dat")

    def test_build_qap_problem_rejects_cost_params(self):
        with pytest.raises(ReproError):
            build_qap_problem("rand16", cost_params=object())


@pytest.fixture(params=[True, False], ids=["symmetric", "asymmetric"])
def instance(request):
    return generate_qap(19, seed=7, symmetric=request.param)


@pytest.fixture
def evaluator(instance):
    problem = QAPProblem.from_instance(instance, reference_seed=0)
    return problem.make_evaluator(problem.random_solution(seed=2))


class TestDeltaKernel:
    def test_batch_deltas_match_brute_force(self, instance, evaluator):
        rng = np.random.default_rng(5)
        pairs = rng.integers(0, instance.n, size=(250, 2))
        deltas = evaluator.deltas_for_swaps(pairs[:, 0], pairs[:, 1])
        raw = evaluator.raw_cost()
        for (a, b), delta in zip(pairs.tolist(), deltas):
            mutated = evaluator.snapshot()
            mutated[[a, b]] = mutated[[b, a]]
            assert raw + delta == pytest.approx(instance.cost_of(mutated), abs=1e-9)

    def test_no_drift_over_a_long_committed_walk(self, instance, evaluator):
        rng = np.random.default_rng(6)
        for _ in range(300):
            a, b = (int(x) for x in rng.integers(0, instance.n, 2))
            evaluator.commit_swap(a, b)
        evaluator.verify_consistency()

    def test_empty_batch(self, evaluator):
        assert evaluator.deltas_for_swaps(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        ).shape == (0,)


class TestEvaluator:
    def test_rejects_bad_assignments(self, instance):
        problem = QAPProblem.from_instance(instance)
        with pytest.raises(ReproError):
            problem.make_evaluator(np.arange(instance.n - 1))
        with pytest.raises(ReproError):
            problem.make_evaluator(np.zeros(instance.n, dtype=np.int64))
        with pytest.raises(ReproError):
            problem.make_evaluator(np.arange(instance.n) + 1)

    def test_reference_normalisation(self, instance):
        problem = QAPProblem.from_instance(instance, reference_seed=0)
        reference_eval = problem.make_evaluator(problem.random_solution(seed=0))
        assert reference_eval.cost() == pytest.approx(1.0)

    def test_swap_gain_sign(self, evaluator):
        gain = evaluator.swap_gain(0, 1)
        assert gain == pytest.approx(evaluator.cost() - evaluator.evaluate_swap(0, 1))

    def test_objectives_as_dict(self, evaluator):
        objectives = evaluator.objectives()
        assert objectives.as_dict() == {"flow_cost": evaluator.raw_cost()}

    def test_exact_cost_restores_canonical_state(self, evaluator):
        rng = np.random.default_rng(8)
        n = evaluator.num_cells
        for _ in range(40):
            a, b = (int(x) for x in rng.integers(0, n, 2))
            evaluator.commit_swap(a, b)
        exact = evaluator.exact_cost()
        assert exact == pytest.approx(
            evaluator.instance.cost_of(evaluator.snapshot()) / evaluator.reference_cost,
            abs=1e-12,
        )

    def test_diversification_distances_symmetrised(self, instance):
        problem = QAPProblem.from_instance(instance)
        evaluator = problem.make_evaluator(np.arange(instance.n))
        candidates = np.arange(instance.n)
        distances = evaluator.diversification_distances(0, candidates)
        expected = 0.5 * (instance.distance[0, :] + instance.distance[:, 0])
        assert np.allclose(distances, expected)
