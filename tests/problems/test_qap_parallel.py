"""QAP end-to-end on the full parallel stack — the core-refactor proof.

The acceptance bar of the domain-agnostic core: the *same* master/TSW/CLW
machinery that places circuits must run a second domain on every backend,
with the delta protocol and (on the processes backend) shared-memory problem
shipping active — nothing in ``repro.parallel`` may special-case a domain.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import ParallelSearchParams, TabuSearchParams, run_parallel_search
from repro.core import get_domain
from repro.parallel.delta import DeltaEncoder, SolutionPayload
from repro.problems.qap import QAPProblem, generate_qap, restore_shared_qap
from repro.pvm import homogeneous_cluster
from repro.pvm.cluster import paper_cluster
from repro.pvm.shm import attach_arrays, export_shared

BACKENDS = ("simulated", "threads", "processes")


@pytest.fixture(scope="module")
def problem():
    return get_domain("qap").build_problem("rand32", reference_seed=0)


def qap_params(seed: int = 11) -> ParallelSearchParams:
    return ParallelSearchParams(
        num_tsws=2,
        clws_per_tsw=1,
        global_iterations=2,
        sync_mode="homogeneous",  # wait-for-all: no timing-dependent interrupts
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
        seed=seed,
    )


def run_once(problem, backend):
    return run_parallel_search(
        problem=problem,
        params=qap_params(),
        backend=backend,
        cluster=homogeneous_cluster(4),
        join_timeout=300.0,
    )


@pytest.fixture(scope="module")
def results(problem):
    """One pair of identically-seeded runs per backend."""
    return {
        backend: (run_once(problem, backend), run_once(problem, backend))
        for backend in BACKENDS
    }


class TestAllBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_improves_on_initial_solution(self, results, backend):
        for result in results[backend]:
            assert result.best_cost < result.initial_cost

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_solution_is_a_permutation(self, results, problem, backend):
        for result in results[backend]:
            solution = result.best_solution
            assert solution.shape == (problem.num_cells,)
            assert len(np.unique(solution)) == problem.num_cells

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_to_run_deterministic(self, results, backend):
        first, second = results[backend]
        assert first.best_cost == second.best_cost
        assert np.array_equal(first.best_solution, second.best_solution)

    def test_backends_reach_identical_quality(self, results):
        """QAP has no timing surrogate, so in wait-for-all mode all three
        backends walk the exact same trajectory."""
        costs = {backend: results[backend][0].best_cost for backend in BACKENDS}
        assert len(set(costs.values())) == 1, costs

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_objectives_are_domain_shaped(self, results, backend):
        objectives = results[backend][0].best_objectives
        assert set(objectives.as_dict()) == {"flow_cost"}
        assert objectives.flow_cost > 0.0


class TestHeterogeneousCluster:
    def test_paper_cluster_with_interrupts(self, problem):
        """The heterogeneous ClusterSpec throttling + early-report path."""
        params = qap_params().with_(
            sync_mode="heterogeneous", report_fraction=0.5, num_tsws=4
        )
        result = run_parallel_search(
            problem=problem, params=params, backend="simulated", cluster=paper_cluster()
        )
        assert result.best_cost < result.initial_cost
        assert len(result.global_records) == params.global_iterations


class TestDeltaProtocolWithQap:
    def test_encoder_ships_deltas_between_rounds(self, problem):
        encoder = DeltaEncoder()
        base = problem.random_solution(seed=1)
        first = encoder.encode("tsw0", base, version=0)
        assert first.is_full  # first contact always ships full
        target = base.copy()
        target[[0, 1]] = target[[1, 0]]
        second = encoder.encode("tsw0", target, version=1)
        assert not second.is_full
        assert second.num_swaps == 1

    def test_payload_roundtrips_through_pickle(self, problem):
        solution = problem.random_solution(seed=2)
        payload = SolutionPayload.full_shipment(solution, version=3)
        clone = pickle.loads(pickle.dumps(payload))
        assert np.array_equal(clone.full_solution(), solution)

    def test_simulated_runs_ship_mostly_deltas(self, problem, monkeypatch):
        """Byte accounting: the delta protocol is active for QAP.

        The same seeded run is measured twice — once as-is and once with the
        encoder's resident tracking force-forgotten before every encode (so
        every hop ships the full solution).  Identical trajectories, so the
        byte gap is purely the delta encoding.  A 100-facility instance keeps
        the solution bytes visible next to the fixed per-message payload
        (moves, tabu lists, traces); measured ratio ~0.71.
        """
        big = get_domain("qap").build_problem("rand100", reference_seed=0)
        params = qap_params().with_(
            global_iterations=3,
            tabu=TabuSearchParams(local_iterations=6, pairs_per_step=3, move_depth=2),
        )

        def run():
            return run_parallel_search(
                problem=big, params=params, backend="simulated",
                cluster=homogeneous_cluster(4),
            )

        with_deltas = run()

        original_encode = DeltaEncoder.encode

        def full_only_encode(self, receiver, target, version):
            self.invalidate(receiver)
            return original_encode(self, receiver, target, version)

        monkeypatch.setattr(DeltaEncoder, "encode", full_only_encode)
        full_only = run()

        assert with_deltas.best_cost == full_only.best_cost  # same trajectory
        assert with_deltas.sim_stats.total_bytes < 0.85 * full_only.sim_stats.total_bytes


class TestSharedMemoryShipping:
    def test_problem_opts_in(self, problem):
        assert hasattr(problem, "__shm_export__")

    def test_restore_is_zero_copy_equivalent(self, problem):
        exported = export_shared(problem)
        assert exported is not None
        ref, pack = exported
        try:
            arrays, block = attach_arrays(ref.block_name, ref.entries)
            try:
                restored = restore_shared_qap(arrays, ref.meta)
                assert isinstance(restored, QAPProblem)
                assert restored.name == problem.name
                assert restored.reference_cost == problem.reference_cost
                # zero copy: matrices are views into the shared block
                assert restored.instance.flow.base is not None
                assert restored.instance.distance.base is not None

                solution = problem.random_solution(seed=4)
                original = problem.make_evaluator(solution)
                mirrored = restored.make_evaluator(solution)
                assert mirrored.cost() == original.cost()
                rng = np.random.default_rng(0)
                pairs = rng.integers(0, problem.num_cells, size=(64, 2))
                assert np.array_equal(
                    mirrored.evaluate_swaps_batch(pairs),
                    original.evaluate_swaps_batch(pairs),
                )
            finally:
                block.close()
        finally:
            pack.close()
            pack.unlink()

    def test_ref_is_smaller_than_the_pickled_problem(self):
        big = QAPProblem.from_instance(generate_qap(100, seed=0))
        exported = export_shared(big)
        assert exported is not None
        ref, pack = exported
        try:
            assert len(pickle.dumps(ref)) < len(pickle.dumps(big)) / 4
        finally:
            pack.close()
            pack.unlink()
