"""Regression tests: a stale/duplicate worker report must not wedge a collect loop.

Under the simulator the master/TSW collect loops only ever see fresh results,
so the latent race was invisible: a result whose round id did not match hit
``continue`` *without* discarding the sender from ``pending``.  On a truly
asynchronous backend a late or duplicate report from an earlier round can be
the only message a worker sends during the current round — and the loop then
waits forever for a result that never comes.

The :class:`ScriptedKernel` below drives a process generator against a fixed
message script.  When the generator asks for a receive the script cannot
serve, the harness raises :class:`ScriptedDeadlock` — which is exactly what
the pre-fix code does with the injected stale results (the collect loop asks
for one more result than the script holds).  With the fix (discard the sender
*before* the staleness check) the scripts below run to completion.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Tuple

import numpy as np
import pytest

from repro.parallel import ParallelSearchParams, build_problem
from repro.parallel.master import MasterResult, master_process
from repro.parallel.messages import ClwResult, GlobalStart, Tags, TswResult, TswSummary
from repro.parallel.tsw import tsw_process
from repro.placement import load_benchmark
from repro.pvm.process import Compute, GetTime, Receive, Send, Sleep, Spawn
from repro.pvm.message import Message
from repro.tabu.candidate import partition_cells
from repro.tabu import TabuSearchParams


class ScriptedDeadlock(AssertionError):
    """The generator asked for a message the script does not contain."""


class ScriptedKernel:
    """Minimal syscall interpreter feeding a generator a fixed message script.

    ``script`` is a list of ``(src, tag, payload)`` triples; every *blocking*
    receive consumes the first entry matching its tag filter.  Non-blocking
    probes always return ``None``.  Spawns hand out fake pids from 100.
    """

    def __init__(self, script: List[Tuple[int, str, Any]]) -> None:
        self.script = list(script)
        self.sent: List[Send] = []
        self.spawned: List[Spawn] = []
        self._pids = itertools.count(100)
        self._clock = 0.0

    def run(self, generator) -> Any:
        value: Any = None
        while True:
            try:
                syscall = generator.send(value)
            except StopIteration as stop:
                return stop.value
            value = self._handle(syscall)

    def _handle(self, syscall) -> Any:
        if isinstance(syscall, (Compute, Sleep)):
            return None
        if isinstance(syscall, GetTime):
            self._clock += 1.0
            return self._clock
        if isinstance(syscall, Send):
            self.sent.append(syscall)
            return None
        if isinstance(syscall, Spawn):
            self.spawned.append(syscall)
            return next(self._pids)
        if isinstance(syscall, Receive):
            if not syscall.blocking:
                return None
            for index, (src, tag, payload) in enumerate(self.script):
                if syscall.tag is not None and tag != syscall.tag:
                    continue
                if syscall.src is not None and src != syscall.src:
                    continue
                self.script.pop(index)
                self._clock += 1.0
                return Message(
                    src=src, dst=0, tag=tag, payload=payload, size_bytes=64,
                    send_time=self._clock, arrival_time=self._clock,
                )
            raise ScriptedDeadlock(
                f"collect loop is waiting for tag={syscall.tag!r} but the "
                f"script is exhausted — a stale result wedged the loop"
            )
        raise AssertionError(f"unexpected syscall {syscall!r}")


@pytest.fixture(scope="module")
def problem():
    params = ParallelSearchParams(seed=5)
    return build_problem(load_benchmark("mini64"), params)


def make_tsw_result(problem, *, tsw_index: int, global_iteration: int) -> TswResult:
    solution = problem.random_solution(seed=40 + tsw_index)
    return TswResult(
        tsw_index=tsw_index,
        global_iteration=global_iteration,
        best_solution=solution,
        best_cost=1e9,  # deliberately worse than the incumbent: never adopted
        local_iterations_done=1,
        interrupted=False,
        evaluations=10,
        tabu_payload=(),
        trace=(),
    )


class TestMasterStaleResult:
    def test_stale_tsw_result_does_not_wedge_the_master(self, problem):
        """TSW 0's only message this round is a duplicate report from an old
        round; the master must still complete the global iteration."""
        params = ParallelSearchParams(
            num_tsws=2,
            clws_per_tsw=1,
            global_iterations=1,
            sync_mode="homogeneous",
            seed=5,
            tabu=TabuSearchParams(local_iterations=1, pairs_per_step=2, move_depth=1),
        )
        stale = make_tsw_result(problem, tsw_index=0, global_iteration=7)
        fresh = make_tsw_result(problem, tsw_index=1, global_iteration=0)
        kernel = ScriptedKernel(
            [
                (100, Tags.TSW_RESULT, stale),  # TSW pid 100: stale, its only message
                (101, Tags.TSW_RESULT, fresh),
            ]
        )
        result = kernel.run(master_process(_ctx(), problem, params))
        assert isinstance(result, MasterResult)
        assert kernel.script == []  # every scripted message was consumed
        # the stale result was dropped: only the fresh one is recorded
        assert result.global_records[0].received_costs == (fresh.best_cost,)
        # both TSWs still received the shutdown broadcast
        stops = [send for send in kernel.sent if send.tag == Tags.STOP]
        assert {send.dst for send in stops} == {100, 101}

    def test_duplicate_current_round_result_is_counted_once(self, problem):
        """A duplicated report for the *current* round must not be recorded
        twice (double-counted costs/evaluations/trace points)."""
        params = ParallelSearchParams(
            num_tsws=2,
            clws_per_tsw=1,
            global_iterations=1,
            sync_mode="homogeneous",
            seed=5,
            tabu=TabuSearchParams(local_iterations=1, pairs_per_step=2, move_depth=1),
        )
        fresh_a = make_tsw_result(problem, tsw_index=0, global_iteration=0)
        fresh_b = make_tsw_result(problem, tsw_index=1, global_iteration=0)
        kernel = ScriptedKernel(
            [
                (100, Tags.TSW_RESULT, fresh_a),
                (100, Tags.TSW_RESULT, fresh_a),  # duplicate delivery
                (101, Tags.TSW_RESULT, fresh_b),
            ]
        )
        result = kernel.run(master_process(_ctx(), problem, params))
        assert kernel.script == []
        assert result.global_records[0].received_costs == (
            fresh_a.best_cost,
            fresh_b.best_cost,
        )

    def test_genuine_result_accepted_after_stale_freed_the_slot(self, problem):
        """A stale duplicate frees TSW 0's pending slot; its genuine
        current-round report arriving afterwards must still be recorded."""
        params = ParallelSearchParams(
            num_tsws=2,
            clws_per_tsw=1,
            global_iterations=1,
            sync_mode="homogeneous",
            seed=5,
            tabu=TabuSearchParams(local_iterations=1, pairs_per_step=2, move_depth=1),
        )
        stale = make_tsw_result(problem, tsw_index=0, global_iteration=7)
        fresh_a = make_tsw_result(problem, tsw_index=0, global_iteration=0)
        fresh_b = make_tsw_result(problem, tsw_index=1, global_iteration=0)
        kernel = ScriptedKernel(
            [
                (100, Tags.TSW_RESULT, stale),    # frees TSW 0's slot
                (100, Tags.TSW_RESULT, fresh_a),  # genuine, slot already freed
                (101, Tags.TSW_RESULT, fresh_b),
            ]
        )
        result = kernel.run(master_process(_ctx(), problem, params))
        assert kernel.script == []
        assert result.global_records[0].received_costs == (
            fresh_a.best_cost,
            fresh_b.best_cost,
        )


class TestTswStaleResult:
    def test_stale_clw_result_does_not_wedge_the_tsw(self, problem):
        """CLW 0 replies with a result for an earlier round; the TSW's collect
        loop must still finish the local iteration."""
        params = ParallelSearchParams(
            num_tsws=1,
            clws_per_tsw=2,
            global_iterations=1,
            sync_mode="homogeneous",
            diversify=False,
            seed=5,
            tabu=TabuSearchParams(local_iterations=1, pairs_per_step=2, move_depth=1),
        )
        num_cells = problem.num_cells
        tsw_range = partition_cells(num_cells, 1, scheme="contiguous", label_prefix="tsw")[0]
        clw_ranges = partition_cells(num_cells, 2, scheme="strided", label_prefix="clw")
        start = GlobalStart(
            global_iteration=0,
            solution=problem.random_solution(seed=3),
            tabu_payload=None,
        )
        stale = ClwResult(
            clw_index=0, round_id=99, pairs=(), cost_before=1.0, cost_after=1.0,
            trials=0, interrupted=False,
        )
        fresh = ClwResult(
            clw_index=1, round_id=1, pairs=(), cost_before=1.0, cost_after=1.0,
            trials=0, interrupted=False,
        )
        kernel = ScriptedKernel(
            [
                (0, Tags.GLOBAL_START, start),
                (100, Tags.CLW_RESULT, stale),  # CLW pid 100: stale, its only message
                (101, Tags.CLW_RESULT, fresh),
                (0, Tags.STOP, None),
            ]
        )
        summary = kernel.run(
            tsw_process(_ctx(), problem, params, 0, tsw_range, list(clw_ranges), seed=17)
        )
        assert isinstance(summary, TswSummary)
        assert kernel.script == []
        assert summary.local_iterations_done == 1
        # the TSW still reported to its parent and stopped its CLWs
        assert any(send.tag == Tags.TSW_RESULT for send in kernel.sent)
        stops = [send for send in kernel.sent if send.tag == Tags.STOP]
        assert {send.dst for send in stops} == {100, 101}


class _ctx:
    """Context stub: identity plus the same syscall constructors as the kernels."""

    pid = 0
    parent = 0
    name = "scripted"
    machine_index = 0
    machine = None

    def compute(self, work_units, label=""):
        return Compute(work_units=work_units, label=label)

    def send(self, dst, tag, payload=None):
        return Send(dst=dst, tag=tag, payload=payload)

    def recv(self, tag=None, src=None):
        return Receive(tag=tag, src=src, blocking=True)

    def recv_timeout(self, timeout, tag=None, src=None):
        return Receive(tag=tag, src=src, blocking=True, timeout=timeout)

    def probe(self, tag=None, src=None):
        return Receive(tag=tag, src=src, blocking=False)

    def spawn(self, func, *args, machine_index=None, name="", **kwargs):
        return Spawn(func=func, args=args, kwargs=dict(kwargs), machine_index=machine_index, name=name)

    def now(self):
        return GetTime()

    def sleep(self, seconds):
        return Sleep(seconds=seconds)
