"""Protocol tests for the Tabu Search Worker process.

A scripted master drives a real TSW (which spawns real CLWs) under the
discrete-event kernel and checks the global-iteration protocol.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import ParallelSearchParams, PlacementProblem
from repro.parallel.delta import decode_solution
from repro.parallel.messages import GlobalStart, ReportNow, Tags
from repro.parallel.tsw import tsw_process
from repro.placement import load_benchmark
from repro.pvm import SimKernel, homogeneous_cluster
from repro.tabu import TabuSearchParams, partition_cells

CIRCUIT = "mini64"


@pytest.fixture(scope="module")
def problem():
    return PlacementProblem.from_netlist(load_benchmark(CIRCUIT), reference_seed=0)


def make_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=2,
        clws_per_tsw=2,
        global_iterations=2,
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


def spawn_tsw(ctx, problem, params, tsw_index=0, seed=7):
    tsw_ranges = partition_cells(problem.num_cells, params.num_tsws)
    clw_ranges = partition_cells(problem.num_cells, params.clws_per_tsw)
    return ctx.spawn(
        tsw_process,
        problem,
        params,
        tsw_index,
        tsw_ranges[tsw_index],
        list(clw_ranges),
        seed,
        name=f"tsw{tsw_index}",
    )


class TestTswProtocol:
    def test_one_result_per_global_iteration(self, problem):
        params = make_params()

        def scripted_master(ctx):
            tsw = yield spawn_tsw(ctx, problem, params)
            results = []
            solution = problem.random_solution(seed=1)
            for iteration in range(2):
                yield ctx.send(
                    tsw, Tags.GLOBAL_START,
                    GlobalStart(global_iteration=iteration, solution=solution),
                )
                reply = yield ctx.recv(tag=Tags.TSW_RESULT)
                results.append(reply.payload)
                # reports may arrive as deltas against this round's broadcast
                solution = decode_solution(
                    reply.payload.best_solution,
                    solution,
                    expected_base_version=iteration,
                )
                assert solution is not None
            yield ctx.send(tsw, Tags.STOP)
            return results, tsw

        kernel = SimKernel(homogeneous_cluster(6))
        pid = kernel.spawn(scripted_master, name="master", machine_index=0)
        kernel.run()
        results, tsw_pid = kernel.result_of(pid)

        assert [r.global_iteration for r in results] == [0, 1]
        assert all(r.local_iterations_done == 3 for r in results)
        assert all(not r.interrupted for r in results)
        assert all(len(r.trace) == r.local_iterations_done for r in results)
        # the TSW improves on the initial random solution
        initial_cost = problem.make_evaluator(problem.random_solution(seed=1)).cost()
        assert results[-1].best_cost < initial_cost
        # summary returned on STOP
        summary = kernel.result_of(tsw_pid)
        assert summary.global_iterations_done == 2
        assert summary.local_iterations_done == 6

    def test_report_now_interrupts_local_iterations(self, problem):
        params = make_params(tabu=TabuSearchParams(local_iterations=50, pairs_per_step=3, move_depth=2))

        def scripted_master(ctx):
            tsw = yield spawn_tsw(ctx, problem, params)
            solution = problem.random_solution(seed=1)
            yield ctx.send(
                tsw, Tags.GLOBAL_START, GlobalStart(global_iteration=0, solution=solution)
            )
            # let the TSW get going, then demand an early report
            yield ctx.sleep(0.05)
            yield ctx.send(tsw, Tags.REPORT_NOW, ReportNow(round_id=0))
            reply = yield ctx.recv(tag=Tags.TSW_RESULT)
            yield ctx.send(tsw, Tags.STOP)
            return reply.payload

        kernel = SimKernel(homogeneous_cluster(6))
        pid = kernel.spawn(scripted_master, name="master", machine_index=0)
        kernel.run()
        result = kernel.result_of(pid)
        assert result.interrupted
        assert result.local_iterations_done < 50

    def test_adopts_broadcast_solution_and_tabu_list(self, problem):
        params = make_params(num_tsws=1, clws_per_tsw=1)

        def scripted_master(ctx):
            tsw = yield spawn_tsw(ctx, problem, params, tsw_index=0)
            solution = problem.random_solution(seed=1)
            yield ctx.send(
                tsw, Tags.GLOBAL_START, GlobalStart(global_iteration=0, solution=solution)
            )
            first = (yield ctx.recv(tag=Tags.TSW_RESULT)).payload
            # broadcast the returned best together with its tabu list (the
            # report may be a delta against this round's broadcast)
            first_best = decode_solution(
                first.best_solution, solution, expected_base_version=0
            )
            assert first_best is not None
            yield ctx.send(
                tsw,
                Tags.GLOBAL_START,
                GlobalStart(
                    global_iteration=1,
                    solution=first_best,
                    tabu_payload=first.tabu_payload,
                ),
            )
            second = (yield ctx.recv(tag=Tags.TSW_RESULT)).payload
            yield ctx.send(tsw, Tags.STOP)
            return first, second

        kernel = SimKernel(homogeneous_cluster(4))
        pid = kernel.spawn(scripted_master, name="master", machine_index=0)
        kernel.run()
        first, second = kernel.result_of(pid)
        assert len(first.tabu_payload) > 0
        # the second round starts from the first round's best, so it can only improve
        assert second.best_cost <= first.best_cost + 1e-9
