"""End-to-end tests of the full master/TSW/CLW search through the public runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParallelSearchError
from repro.parallel import ParallelSearchParams, build_problem, run_parallel_search
from repro.placement import load_benchmark
from repro.pvm import heterogeneous_cluster, homogeneous_cluster, paper_cluster
from repro.tabu import TabuSearchParams

CIRCUIT = "mini64"


def quick_params(**overrides) -> ParallelSearchParams:
    defaults = dict(
        num_tsws=2,
        clws_per_tsw=2,
        global_iterations=2,
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
        seed=11,
    )
    defaults.update(overrides)
    return ParallelSearchParams(**defaults)


@pytest.fixture(scope="module")
def netlist():
    return load_benchmark(CIRCUIT)


class TestRunnerBasics:
    def test_run_improves_on_initial_solution(self, netlist):
        result = run_parallel_search(netlist, quick_params())
        assert result.best_cost < result.initial_cost
        assert 0.0 < result.improvement < 1.0
        assert result.virtual_runtime > 0
        assert result.instance == CIRCUIT

    def test_circuit_is_a_deprecated_alias_of_instance(self, netlist):
        result = run_parallel_search(netlist, quick_params())
        with pytest.warns(DeprecationWarning, match="circuit is deprecated"):
            assert result.circuit == result.instance

    def test_best_solution_is_a_valid_assignment(self, netlist):
        result = run_parallel_search(netlist, quick_params())
        solution = result.best_solution
        assert solution.shape == (netlist.num_cells,)
        assert len(np.unique(solution)) == netlist.num_cells

    def test_reported_cost_matches_reevaluation(self, netlist):
        params = quick_params()
        problem = build_problem(netlist, params)
        result = run_parallel_search(netlist, params, problem=problem)
        evaluator = problem.make_evaluator(result.best_solution)
        assert evaluator.exact_cost() == pytest.approx(result.best_cost, rel=1e-6)

    def test_trace_is_monotone_envelope(self, netlist):
        result = run_parallel_search(netlist, quick_params())
        times = [t for t, _ in result.trace]
        costs = [c for _, c in result.trace]
        assert times == sorted(times)
        assert all(b <= a + 1e-12 for a, b in zip(costs, costs[1:]))
        assert costs[-1] == pytest.approx(min(costs))

    def test_global_records_one_per_iteration(self, netlist):
        params = quick_params(global_iterations=3)
        result = run_parallel_search(netlist, params)
        assert len(result.global_records) == 3
        for record in result.global_records:
            assert len(record.received_costs) == params.num_tsws

    def test_process_count_matches_topology(self, netlist):
        params = quick_params(num_tsws=3, clws_per_tsw=2)
        result = run_parallel_search(netlist, params)
        # master + TSWs + CLWs
        assert result.sim_stats.num_processes == 1 + 3 + 6

    def test_time_to_reach_queries_trace(self, netlist):
        result = run_parallel_search(netlist, quick_params())
        final = result.best_cost
        assert result.time_to_reach(final) is not None
        assert result.time_to_reach(final * 0.01) is None

    def test_unknown_backend_rejected(self, netlist):
        with pytest.raises(ParallelSearchError):
            run_parallel_search(netlist, quick_params(), backend="mpi")  # type: ignore[arg-type]


class TestDeterminism:
    def test_same_seed_same_result(self, netlist):
        a = run_parallel_search(netlist, quick_params(seed=3))
        b = run_parallel_search(netlist, quick_params(seed=3))
        assert a.best_cost == pytest.approx(b.best_cost)
        assert np.array_equal(a.best_solution, b.best_solution)
        assert a.virtual_runtime == pytest.approx(b.virtual_runtime)
        assert a.trace == b.trace

    def test_different_seed_differs(self, netlist):
        a = run_parallel_search(netlist, quick_params(seed=3))
        b = run_parallel_search(netlist, quick_params(seed=4))
        assert not np.array_equal(a.best_solution, b.best_solution)


class TestSyncModes:
    def test_heterogeneous_interrupts_on_heterogeneous_cluster(self, netlist):
        cluster = heterogeneous_cluster(num_high=2, num_medium=2, num_low=2, load_jitter=0.2)
        params = quick_params(num_tsws=4, clws_per_tsw=1, sync_mode="heterogeneous")
        result = run_parallel_search(netlist, params, cluster=cluster)
        interrupted = sum(record.interrupted_tsws for record in result.global_records)
        assert interrupted > 0

    def test_homogeneous_never_interrupts(self, netlist):
        cluster = heterogeneous_cluster(num_high=2, num_medium=2, num_low=2, load_jitter=0.2)
        params = quick_params(num_tsws=4, clws_per_tsw=1, sync_mode="homogeneous")
        result = run_parallel_search(netlist, params, cluster=cluster)
        interrupted = sum(record.interrupted_tsws for record in result.global_records)
        assert interrupted == 0

    def test_heterogeneous_is_faster_on_unbalanced_cluster(self):
        # A deliberately unbalanced cluster and deep, non-early-accepting
        # compound moves give the early-report mechanism room to cut work.
        netlist = load_benchmark("small200")
        cluster = heterogeneous_cluster(num_high=2, num_medium=2, num_low=4, load_jitter=0.3)
        shared = dict(
            num_tsws=4,
            clws_per_tsw=3,
            global_iterations=2,
            seed=11,
            tabu=TabuSearchParams(
                local_iterations=4, pairs_per_step=5, move_depth=6, early_accept=False
            ),
        )
        params_het = ParallelSearchParams(sync_mode="heterogeneous", **shared)
        params_hom = ParallelSearchParams(sync_mode="homogeneous", **shared)
        problem = build_problem(netlist, params_het)
        het = run_parallel_search(netlist, params_het, cluster=cluster, problem=problem)
        hom = run_parallel_search(netlist, params_hom, cluster=cluster, problem=problem)
        assert het.virtual_runtime < hom.virtual_runtime
        # CLWs are actually interrupted in the heterogeneous run, never in the
        # homogeneous one
        def clw_interruptions(result):
            return sum(
                info.result.interruptions
                for info in result.process_infos
                if "." in info.name and info.result is not None
            )

        assert clw_interruptions(het) > 0
        assert clw_interruptions(hom) == 0


class TestBackends:
    def test_threads_backend_produces_comparable_quality(self, netlist):
        params = quick_params(num_tsws=2, clws_per_tsw=1)
        simulated = run_parallel_search(netlist, params, backend="simulated")
        threaded = run_parallel_search(
            netlist, params, backend="threads", cluster=homogeneous_cluster(4)
        )
        assert threaded.best_cost < threaded.initial_cost
        # same protocol, same cost model: final quality in the same ballpark
        assert abs(threaded.best_cost - simulated.best_cost) < 0.25

    def test_single_worker_configuration_runs(self, netlist):
        # a few extra local iterations: a lone 3-pair/depth-2 worker must
        # first recover the cost its diversification step gave up, and the
        # quick_params budget leaves that to seed luck
        params = quick_params(
            num_tsws=1,
            clws_per_tsw=1,
            tabu=TabuSearchParams(local_iterations=8, pairs_per_step=3, move_depth=2),
        )
        result = run_parallel_search(netlist, params)
        assert result.best_cost < result.initial_cost
        assert result.sim_stats.num_processes == 3
