"""Unit tests for the shared placement-problem handle."""

from __future__ import annotations

import importlib
import sys
import warnings

import numpy as np
import pytest

from repro.parallel import PlacementProblem
from repro.placement import CostModelParams, load_benchmark


class TestDeprecatedShim:
    def test_importing_the_shim_module_warns(self):
        # the legacy module re-exports PlacementProblem from its new home in
        # repro.problems.placement; importing it must warn, once per import
        sys.modules.pop("repro.parallel.problem", None)
        with pytest.warns(DeprecationWarning, match="repro.parallel.problem"):
            importlib.import_module("repro.parallel.problem")

    def test_shim_reexports_the_real_class(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            sys.modules.pop("repro.parallel.problem", None)
            shim = importlib.import_module("repro.parallel.problem")
        from repro.problems.placement import PlacementProblem as canonical

        assert shim.PlacementProblem is canonical
        assert PlacementProblem is canonical  # the lazy package alias too


@pytest.fixture(scope="module")
def problem():
    return PlacementProblem.from_netlist(load_benchmark("mini64"), reference_seed=1)


class TestPlacementProblem:
    def test_reference_matches_layout_and_netlist(self, problem):
        assert problem.num_cells == 64
        assert problem.layout.netlist is problem.netlist

    def test_random_solution_deterministic(self, problem):
        a = problem.random_solution(seed=5)
        b = problem.random_solution(seed=5)
        assert np.array_equal(a, b)

    def test_make_evaluator_uses_shared_reference(self, problem):
        solution = problem.random_solution(seed=2)
        evaluator_a = problem.make_evaluator(solution)
        evaluator_b = problem.make_evaluator(problem.random_solution(seed=3))
        assert evaluator_a.reference == problem.reference
        assert evaluator_a.aggregator.goals == evaluator_b.aggregator.goals

    def test_evaluators_are_independent(self, problem):
        solution = problem.random_solution(seed=2)
        evaluator_a = problem.make_evaluator(solution)
        evaluator_b = problem.make_evaluator(solution.copy())
        evaluator_a.commit_swap(0, 1)
        assert not evaluator_a.placement.equals(evaluator_b.placement)

    def test_install_work_units_scales_with_circuit(self):
        small = PlacementProblem.from_netlist(load_benchmark("tiny16"))
        large = PlacementProblem.from_netlist(load_benchmark("c532"))
        assert large.install_work_units() > small.install_work_units()
        assert small.install_work_units() >= 2.0

    def test_custom_cost_params_respected(self):
        params = CostModelParams(aggregation="weighted_sum")
        problem = PlacementProblem.from_netlist(load_benchmark("tiny16"), cost_params=params)
        assert problem.cost_params.aggregation == "weighted_sum"
