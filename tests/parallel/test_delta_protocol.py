"""Tests of the delta-encoded parallel protocol (PR 3).

Covers the wire machinery (:mod:`repro.parallel.delta`), the equivalence of
delta adoption with full installation, and the ``needs_full`` divergence
recovery of both the CLW and the TSW, driven by scripted parents under the
discrete-event kernel.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.parallel import ParallelSearchParams, PlacementProblem
from repro.parallel.clw import clw_process
from repro.parallel.delta import (
    DeltaEncoder,
    ResidentSolution,
    SolutionPayload,
    as_payload,
    decode_solution,
    solution_crc,
    swap_list_between,
)
from repro.parallel.messages import ClwTask, GlobalStart, Tags
from repro.parallel.tsw import _result_to_candidate, tsw_process
from repro.placement import load_benchmark
from repro.pvm import SimKernel, homogeneous_cluster
from repro.tabu import TabuSearchParams, full_range, partition_cells
from repro.tabu.search import TabuSearch

CIRCUITS = ("mini64", "c532", "c1355")


@pytest.fixture(scope="module")
def problem():
    return PlacementProblem.from_netlist(load_benchmark("mini64"), reference_seed=0)


def random_swapped(solution: np.ndarray, num_swaps: int, rng) -> np.ndarray:
    target = solution.copy()
    for _ in range(num_swaps):
        cell_a, cell_b = rng.integers(0, solution.size, size=2)
        target[[cell_a, cell_b]] = target[[cell_b, cell_a]]
    return target


class TestSwapListBetween:
    def test_roundtrip_random_permutations(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(4, 200))
            base = rng.permutation(n * 2)[:n]
            target = base.copy()[rng.permutation(n)]
            # target must stay a valid assignment of the same slots
            swaps = swap_list_between(base, target)
            replay = base.copy()
            for cell_a, cell_b in swaps:
                replay[[cell_a, cell_b]] = replay[[cell_b, cell_a]]
            assert np.array_equal(replay, target)
            assert swaps.shape[0] <= int(np.count_nonzero(base != target))

    def test_identity_is_empty(self):
        base = np.arange(10)
        assert swap_list_between(base, base).shape == (0, 2)

    def test_few_swaps_stay_few(self):
        rng = np.random.default_rng(1)
        base = rng.permutation(500)
        target = random_swapped(base, 5, rng)
        assert swap_list_between(base, target).shape[0] <= 10


class TestWireCodec:
    def test_full_payload_roundtrip(self):
        solution = np.arange(400, dtype=np.int64)[::-1].copy()
        payload = SolutionPayload.full_shipment(solution, version=7)
        restored = pickle.loads(pickle.dumps(payload))
        assert restored.is_full and restored.version == 7
        assert np.array_equal(restored.full_solution(), solution)

    def test_delta_payload_roundtrip(self):
        swaps = np.array([[1, 2], [3, 9]], dtype=np.int64)
        payload = SolutionPayload.delta_shipment(swaps, version=5, base_version=4, target_crc=123)
        restored = pickle.loads(pickle.dumps(payload))
        assert not restored.is_full
        assert restored.version == 5 and restored.base_version == 4
        assert restored.target_crc == 123
        assert np.array_equal(restored.swap_pairs(), swaps)

    def test_delta_is_much_smaller_than_legacy_full(self):
        solution = np.arange(1000, dtype=np.int64)
        legacy = len(pickle.dumps(solution))
        full = len(pickle.dumps(SolutionPayload.full_shipment(solution, 0)))
        delta = len(
            pickle.dumps(
                SolutionPayload.delta_shipment(np.array([[1, 2]]), 1, 0, 99)
            )
        )
        assert full < legacy  # int32 halves the raw int64 pickle
        assert delta < legacy / 20


class TestDeltaEncoder:
    def test_full_then_delta_then_fallback(self):
        rng = np.random.default_rng(2)
        base = rng.permutation(200)
        encoder = DeltaEncoder(max_delta_fraction=0.25)
        first = encoder.encode("w", base, version=0)
        assert first.is_full

        near = random_swapped(base, 3, rng)
        second = encoder.encode("w", near, version=1)
        assert not second.is_full
        assert second.base_version == 0
        assert second.target_crc == solution_crc(near)

        far = near.copy()[rng.permutation(200)]
        third = encoder.encode("w", far, version=2)
        assert third.is_full  # diff beyond max_delta_fraction ships full
        assert encoder.full_shipments == 2 and encoder.delta_shipments == 1

    def test_invalidate_forces_full(self):
        rng = np.random.default_rng(3)
        base = rng.permutation(64)
        encoder = DeltaEncoder()
        encoder.encode("w", base, version=0)
        encoder.invalidate("w")
        again = encoder.encode("w", random_swapped(base, 1, rng), version=1)
        assert again.is_full

    def test_set_resident_enables_delta(self):
        rng = np.random.default_rng(4)
        base = rng.permutation(64)
        encoder = DeltaEncoder()
        encoder.set_resident("w", 9, base)
        payload = encoder.encode("w", random_swapped(base, 2, rng), version=10)
        assert not payload.is_full and payload.base_version == 9


class TestResidentSolution:
    def test_plan_and_mismatch(self):
        resident = ResidentSolution()
        full = SolutionPayload.full_shipment(np.arange(8), version=3)
        kind, data = resident.plan(full)
        assert kind == "full"
        resident.adopted(full)
        assert resident.version == 3

        matching = SolutionPayload.delta_shipment(np.array([[0, 1]]), 4, base_version=3)
        kind, data = resident.plan(matching)
        assert kind == "delta" and data.shape == (1, 2)

        mismatching = SolutionPayload.delta_shipment(np.array([[0, 1]]), 4, base_version=7)
        kind, data = resident.plan(mismatching)
        assert kind == "mismatch" and data is None

    def test_decode_solution_checks_crc(self):
        rng = np.random.default_rng(5)
        base = rng.permutation(64)
        target = random_swapped(base, 2, rng)
        payload = SolutionPayload.delta_shipment(
            swap_list_between(base, target), 1, 0, solution_crc(target)
        )
        assert np.array_equal(decode_solution(payload, base), target)
        corrupted = SolutionPayload.delta_shipment(
            payload.swap_pairs(), 1, 0, solution_crc(target) ^ 0xFF
        )
        assert decode_solution(corrupted, base) is None


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_delta_adopt_matches_full_install_with_tabu_state(circuit):
    """Delta adoption == full install == scratch: cost, caches, tabu state."""
    netlist = load_benchmark(circuit)
    prob = PlacementProblem.from_netlist(netlist, reference_seed=0)
    rng = np.random.default_rng(17)
    base = prob.random_solution(1)

    delta_eval = prob.make_evaluator(base)
    delta_search = TabuSearch(delta_eval, TabuSearchParams(), seed=3)
    full_eval = prob.make_evaluator(base)
    full_search = TabuSearch(full_eval, TabuSearchParams(), seed=3)

    tabu_payload = (("swap", (1, 2), 5), ("swap", (3, 4), 9))
    current = base
    for round_index in range(3):
        target = random_swapped(current, int(rng.integers(1, 12)), rng)
        pairs = swap_list_between(current, target)
        cost_delta = delta_search.adopt_solution_delta(pairs)
        cost_full = full_search.adopt_solution(target)
        assert cost_delta == pytest.approx(cost_full, abs=1e-6)
        assert np.array_equal(delta_eval.snapshot(), full_eval.snapshot())

        scratch_eval = prob.make_evaluator(target)
        assert cost_delta == pytest.approx(scratch_eval.cost(), abs=1e-6)
        for field in ("_x_min", "_x_max", "_y_min", "_y_max",
                      "_n_x_min", "_n_x_max", "_n_y_min", "_n_y_max"):
            assert np.allclose(
                getattr(delta_eval._wirelength, field),
                getattr(scratch_eval._wirelength, field),
                atol=1e-6,
            ), field

        delta_search.adopt_tabu_list(tabu_payload)
        full_search.adopt_tabu_list(tabu_payload)
        assert delta_search.tabu_list.to_payload() == full_search.tabu_list.to_payload()
        assert delta_search.best_cost == pytest.approx(full_search.best_cost, abs=1e-6)
        current = target


class TestClwDeltaProtocol:
    def run_parent(self, problem, parent):
        kernel = SimKernel(homogeneous_cluster(4))
        pid = kernel.spawn(parent, name="scripted-parent", machine_index=0)
        kernel.run()
        return kernel.result_of(pid)

    def spawn_clw(self, ctx, problem, params):
        return ctx.spawn(
            clw_process, problem, params, full_range(problem.num_cells), 0, 123,
            name="clw0",
        )

    def test_delta_task_is_adopted_incrementally(self, problem):
        """Full first task, delta second task, empty-delta third task."""
        params = TabuSearchParams(pairs_per_step=4, move_depth=2)

        def parent(ctx):
            clw = yield self.spawn_clw(ctx, problem, params)
            encoder = DeltaEncoder()
            rng = np.random.default_rng(0)
            solution = problem.random_solution(seed=1)
            replies = []
            # round 1: full, round 2: small delta, round 3: unchanged
            solutions = [solution, random_swapped(solution, 3, rng)]
            solutions.append(solutions[-1])
            for round_id, target in enumerate(solutions, start=1):
                payload = encoder.encode(0, target, version=round_id)
                yield ctx.send(clw, Tags.CLW_TASK, ClwTask(round_id=round_id, solution=payload))
                reply = yield ctx.recv(tag=Tags.CLW_RESULT)
                replies.append(reply.payload)
            yield ctx.send(clw, Tags.STOP)
            return replies

        replies = self.run_parent(problem, parent)
        assert [r.adopt_swaps for r in replies] == [-1, 3, 0]
        assert all(not r.needs_full for r in replies)
        assert all(r.round_id == i for i, r in enumerate(replies, start=1))
        # per-step costs ride along and match the pair count
        for reply in replies:
            assert len(reply.step_costs) == len(reply.pairs)

    def test_divergent_delta_triggers_full_recovery(self, problem):
        """A delta against a wrong base is NACKed and a full re-send recovers."""
        params = TabuSearchParams(pairs_per_step=4, move_depth=2)

        def parent(ctx):
            clw = yield self.spawn_clw(ctx, problem, params)
            rng = np.random.default_rng(1)
            solution = problem.random_solution(seed=2)
            # proper full task first
            yield ctx.send(
                clw, Tags.CLW_TASK,
                ClwTask(round_id=1, solution=as_payload(solution, version=1)),
            )
            first = (yield ctx.recv(tag=Tags.CLW_RESULT)).payload
            # now a delta claiming a base the CLW never adopted
            bogus = SolutionPayload.delta_shipment(
                np.array([[0, 1]]), version=2, base_version=77,
                target_crc=solution_crc(solution),
            )
            yield ctx.send(clw, Tags.CLW_TASK, ClwTask(round_id=2, solution=bogus))
            nack = (yield ctx.recv(tag=Tags.CLW_RESULT)).payload
            # recover with a full shipment of the same round
            target = random_swapped(solution, 2, rng)
            yield ctx.send(
                clw, Tags.CLW_TASK,
                ClwTask(round_id=2, solution=as_payload(target, version=2)),
            )
            recovered = (yield ctx.recv(tag=Tags.CLW_RESULT)).payload
            yield ctx.send(clw, Tags.STOP)
            return first, nack, recovered

        first, nack, recovered = self.run_parent(problem, parent)
        assert not first.needs_full
        assert nack.needs_full and nack.round_id == 2 and not nack.pairs
        assert not recovered.needs_full
        assert recovered.round_id == 2 and len(recovered.pairs) >= 1

    def test_wrong_crc_delta_triggers_full_recovery(self, problem):
        """A delta whose checksum fails after application is NACKed too."""
        params = TabuSearchParams(pairs_per_step=4, move_depth=2)

        def parent(ctx):
            clw = yield self.spawn_clw(ctx, problem, params)
            solution = problem.random_solution(seed=3)
            yield ctx.send(
                clw, Tags.CLW_TASK,
                ClwTask(round_id=1, solution=as_payload(solution, version=1)),
            )
            yield ctx.recv(tag=Tags.CLW_RESULT)
            # correct base version, wrong checksum: simulates a tracking bug
            bad = SolutionPayload.delta_shipment(
                np.array([[0, 1]]), version=2, base_version=1, target_crc=0xDEAD,
            )
            yield ctx.send(clw, Tags.CLW_TASK, ClwTask(round_id=2, solution=bad))
            nack = (yield ctx.recv(tag=Tags.CLW_RESULT)).payload
            target = problem.random_solution(seed=4)
            yield ctx.send(
                clw, Tags.CLW_TASK,
                ClwTask(round_id=2, solution=as_payload(target, version=2)),
            )
            recovered = (yield ctx.recv(tag=Tags.CLW_RESULT)).payload
            yield ctx.send(clw, Tags.STOP)
            return nack, recovered

        nack, recovered = self.run_parent(problem, parent)
        assert nack.needs_full
        assert not recovered.needs_full and len(recovered.pairs) >= 1


class TestTswDeltaProtocol:
    def test_first_contact_delta_broadcast_is_nacked_and_recovers(self, problem):
        """A TSW that never saw a full solution NACKs a delta broadcast."""
        params = ParallelSearchParams(
            num_tsws=1,
            clws_per_tsw=1,
            global_iterations=1,
            tabu=TabuSearchParams(local_iterations=2, pairs_per_step=3, move_depth=2),
        )
        tsw_ranges = partition_cells(problem.num_cells, 1)
        clw_ranges = partition_cells(problem.num_cells, 1)

        def master(ctx):
            tsw = yield ctx.spawn(
                tsw_process, problem, params, 0, tsw_ranges[0], list(clw_ranges), 7,
                name="tsw0",
            )
            solution = problem.random_solution(seed=1)
            bogus = SolutionPayload.delta_shipment(
                np.array([[0, 1]]), version=0, base_version=4,
                target_crc=solution_crc(solution),
            )
            yield ctx.send(
                tsw, Tags.GLOBAL_START,
                GlobalStart(global_iteration=0, solution=bogus),
            )
            nack = (yield ctx.recv(tag=Tags.TSW_RESULT)).payload
            yield ctx.send(
                tsw, Tags.GLOBAL_START,
                GlobalStart(global_iteration=0, solution=solution),
            )
            recovered = (yield ctx.recv(tag=Tags.TSW_RESULT)).payload
            yield ctx.send(tsw, Tags.STOP)
            return nack, recovered

        kernel = SimKernel(homogeneous_cluster(4))
        pid = kernel.spawn(master, name="master", machine_index=0)
        kernel.run()
        nack, recovered = kernel.result_of(pid)
        assert nack.needs_full and nack.best_cost == float("inf")
        assert not recovered.needs_full
        assert recovered.local_iterations_done == 2
        decoded = decode_solution(
            recovered.best_solution,
            problem.random_solution(seed=1),
            expected_base_version=0,
        )
        assert decoded is not None and decoded.shape == (problem.num_cells,)


def test_result_to_candidate_keeps_per_step_costs():
    """Intermediate swaps carry their own costs, not the final one."""
    from repro.parallel.messages import ClwResult

    result = ClwResult(
        clw_index=0,
        round_id=1,
        pairs=((1, 2), (3, 4), (5, 6)),
        cost_before=0.9,
        cost_after=0.5,
        trials=12,
        interrupted=False,
        step_costs=(0.8, 0.65, 0.5),
    )
    move = _result_to_candidate(result)
    assert [s.cost_after for s in move.swaps] == [0.8, 0.65, 0.5]
    assert move.cost_after == 0.5

    legacy = ClwResult(
        clw_index=0,
        round_id=1,
        pairs=((1, 2), (3, 4)),
        cost_before=0.9,
        cost_after=0.5,
        trials=8,
        interrupted=False,
    )
    legacy_move = _result_to_candidate(legacy)
    assert [s.cost_after for s in legacy_move.swaps] == [0.5, 0.5]


def test_shipment_mode_does_not_change_trajectory(monkeypatch):
    """Delta and full shipment are interchangeable: same seeded trajectory.

    Forces every encoder to ship full solutions and re-runs the same seeded
    search — the result must match the delta-shipping run (resident adoption
    leaves workers in the same state a full install produces).
    """
    from repro import run_parallel_search

    netlist = load_benchmark("c532")
    params = ParallelSearchParams(
        num_tsws=2,
        clws_per_tsw=2,
        global_iterations=3,
        tabu=TabuSearchParams(local_iterations=4, pairs_per_step=6, move_depth=2),
        seed=11,
    )
    with_deltas = run_parallel_search(netlist, params, backend="simulated")

    def always_full(self, receiver, target, version):
        target = np.asarray(target, dtype=np.int64)
        self._resident[receiver] = (version, target.copy())
        self.full_shipments += 1
        return SolutionPayload.full_shipment(target, version)

    monkeypatch.setattr(DeltaEncoder, "encode", always_full)
    full_only = run_parallel_search(netlist, params, backend="simulated")
    assert with_deltas.best_cost == pytest.approx(full_only.best_cost, abs=1e-9)
    assert [r.best_cost_after for r in with_deltas.global_records] == pytest.approx(
        [r.best_cost_after for r in full_only.global_records], abs=1e-9
    )


def test_end_to_end_delta_run_matches_legacy_bytes_reduction():
    """A simulated run ships several-fold fewer bytes than full shipment would."""
    from repro import run_parallel_search

    netlist = load_benchmark("c532")
    params = ParallelSearchParams(
        num_tsws=2,
        clws_per_tsw=2,
        global_iterations=3,
        tabu=TabuSearchParams(local_iterations=5, pairs_per_step=8, move_depth=3),
        seed=7,
    )
    result = run_parallel_search(netlist, params, backend="simulated")
    assert result.best_cost < result.initial_cost
    stats = result.sim_stats
    # full shipment lower bound: every one of the protocol's solution-bearing
    # messages would carry the whole int64 assignment (~3.2 KB each)
    full_shipment_floor = stats.total_messages * netlist.num_cells * 8 * 0.5
    assert stats.total_bytes < full_shipment_floor
