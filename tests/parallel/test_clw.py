"""Protocol tests for the Candidate List Worker process.

A scripted parent process drives a real CLW under the discrete-event kernel
and checks the wire protocol: one result per task, correct pair structure,
response to early-report requests, and clean shutdown.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import PlacementProblem
from repro.parallel.clw import clw_process
from repro.parallel.messages import ClwTask, ReportNow, Tags
from repro.placement import load_benchmark
from repro.pvm import SimKernel, homogeneous_cluster
from repro.tabu import TabuSearchParams, full_range, partition_cells


@pytest.fixture(scope="module")
def problem():
    return PlacementProblem.from_netlist(load_benchmark("mini64"), reference_seed=0)


def run_scripted_parent(problem, parent_body):
    """Spawn ``parent_body`` under a fresh kernel and return its result."""
    kernel = SimKernel(homogeneous_cluster(4))
    pid = kernel.spawn(parent_body, name="scripted-parent", machine_index=0)
    kernel.run()
    return kernel.result_of(pid), kernel


class TestClwTaskHandling:
    def test_one_result_per_task_with_valid_pairs(self, problem):
        params = TabuSearchParams(pairs_per_step=4, move_depth=3)

        def parent(ctx):
            clw = yield ctx.spawn(
                clw_process, problem, params, full_range(problem.num_cells), 0, 123,
                name="clw0",
            )
            results = []
            for round_id in range(1, 4):
                solution = problem.random_solution(seed=round_id)
                yield ctx.send(clw, Tags.CLW_TASK, ClwTask(round_id=round_id, solution=solution))
                reply = yield ctx.recv(tag=Tags.CLW_RESULT)
                results.append(reply.payload)
            yield ctx.send(clw, Tags.STOP)
            summary_holder = []
            return results

        results, kernel = run_scripted_parent(problem, parent)
        assert len(results) == 3
        for round_id, result in enumerate(results, start=1):
            assert result.round_id == round_id
            assert result.clw_index == 0
            assert 1 <= len(result.pairs) <= 3
            assert result.trials >= 4
            for a, b in result.pairs:
                assert 0 <= a < problem.num_cells
                assert 0 <= b < problem.num_cells
                assert a != b
            assert not result.interrupted

    def test_replaying_pairs_reproduces_reported_cost(self, problem):
        params = TabuSearchParams(pairs_per_step=4, move_depth=2)

        def parent(ctx):
            clw = yield ctx.spawn(
                clw_process, problem, params, full_range(problem.num_cells), 0, 5, name="clw0"
            )
            solution = problem.random_solution(seed=9)
            yield ctx.send(clw, Tags.CLW_TASK, ClwTask(round_id=1, solution=solution))
            reply = yield ctx.recv(tag=Tags.CLW_RESULT)
            yield ctx.send(clw, Tags.STOP)
            return solution, reply.payload

        (solution, result), _ = run_scripted_parent(problem, parent)
        evaluator = problem.make_evaluator(solution)
        assert evaluator.cost() == pytest.approx(result.cost_before, rel=1e-6)
        for a, b in result.pairs:
            evaluator.commit_swap(a, b)
        assert evaluator.cost() == pytest.approx(result.cost_after, rel=1e-2)

    def test_restricted_range_is_respected(self, problem):
        params = TabuSearchParams(pairs_per_step=3, move_depth=3, early_accept=False)
        clw_range = partition_cells(problem.num_cells, 4)[0]

        def parent(ctx):
            clw = yield ctx.spawn(
                clw_process, problem, params, clw_range, 0, 11, name="clw0"
            )
            yield ctx.send(
                clw, Tags.CLW_TASK,
                ClwTask(round_id=1, solution=problem.random_solution(seed=1)),
            )
            reply = yield ctx.recv(tag=Tags.CLW_RESULT)
            yield ctx.send(clw, Tags.STOP)
            return reply.payload

        result, _ = run_scripted_parent(problem, parent)
        range_cells = set(clw_range.cells)
        for a, b in result.pairs:
            assert a in range_cells or b in range_cells

    def test_stop_returns_summary(self, problem):
        params = TabuSearchParams(pairs_per_step=2, move_depth=1)

        def parent(ctx):
            clw = yield ctx.spawn(
                clw_process, problem, params, full_range(problem.num_cells), 3, 7, name="clw3"
            )
            yield ctx.send(
                clw, Tags.CLW_TASK, ClwTask(round_id=1, solution=problem.random_solution(seed=1))
            )
            yield ctx.recv(tag=Tags.CLW_RESULT)
            yield ctx.send(clw, Tags.STOP)
            return clw

        clw_pid, kernel = run_scripted_parent(problem, parent)
        summary = kernel.result_of(clw_pid)
        assert summary.clw_index == 3
        assert summary.tasks_done == 1
        assert summary.trials >= 2

    def test_stale_report_now_is_ignored(self, problem):
        params = TabuSearchParams(pairs_per_step=2, move_depth=2)

        def parent(ctx):
            clw = yield ctx.spawn(
                clw_process, problem, params, full_range(problem.num_cells), 0, 3, name="clw0"
            )
            # a report request for a round that never existed must not break anything
            yield ctx.send(clw, Tags.REPORT_NOW, ReportNow(round_id=0))
            yield ctx.send(
                clw, Tags.CLW_TASK, ClwTask(round_id=1, solution=problem.random_solution(seed=4))
            )
            reply = yield ctx.recv(tag=Tags.CLW_RESULT)
            yield ctx.send(clw, Tags.STOP)
            return reply.payload

        result, _ = run_scripted_parent(problem, parent)
        assert result.round_id == 1
        assert len(result.pairs) >= 1
