"""Unit tests for the sync policy, parallel parameters and taxonomy classification."""

from __future__ import annotations

import pytest

from repro.errors import ParallelSearchError
from repro.parallel import ParallelSearchParams, SyncPolicy, classify
from repro.parallel.taxonomy import (
    CommunicationType,
    ControlCardinality,
    ParallelisationStrategy,
    SearchDifferentiation,
)


class TestSyncPolicy:
    def test_homogeneous_waits_for_all(self):
        policy = SyncPolicy(mode="homogeneous")
        assert not policy.is_heterogeneous
        assert policy.report_threshold(8) == 8
        assert not policy.should_interrupt(received=7, num_children=8)

    def test_heterogeneous_half_threshold(self):
        policy = SyncPolicy(mode="heterogeneous", report_fraction=0.5)
        assert policy.report_threshold(8) == 4
        assert policy.report_threshold(5) == 3  # ceil(2.5)
        assert policy.report_threshold(1) == 1

    def test_should_interrupt_boundaries(self):
        policy = SyncPolicy(mode="heterogeneous", report_fraction=0.5)
        assert not policy.should_interrupt(received=3, num_children=8)
        assert policy.should_interrupt(received=4, num_children=8)
        # never interrupt once everyone has reported
        assert not policy.should_interrupt(received=8, num_children=8)

    def test_full_fraction_equals_homogeneous_behaviour(self):
        policy = SyncPolicy(mode="heterogeneous", report_fraction=1.0)
        assert policy.report_threshold(6) == 6
        assert not policy.should_interrupt(received=5, num_children=6)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ParallelSearchError):
            SyncPolicy(mode="sometimes")  # type: ignore[arg-type]

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ParallelSearchError):
            SyncPolicy(report_fraction=0.0)

    def test_invalid_child_count_rejected(self):
        with pytest.raises(ParallelSearchError):
            SyncPolicy().report_threshold(0)


class TestParallelSearchParams:
    def test_defaults_match_paper_setup(self):
        params = ParallelSearchParams()
        assert params.num_tsws == 4
        assert params.sync_mode == "heterogeneous"
        assert params.report_fraction == 0.5
        assert params.diversify

    def test_total_workers(self):
        params = ParallelSearchParams(num_tsws=4, clws_per_tsw=3)
        assert params.total_workers == 4 + 12

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tsws": 0},
            {"clws_per_tsw": 0},
            {"global_iterations": 0},
            {"sync_mode": "bogus"},
            {"report_fraction": 0.0},
            {"report_fraction": 1.5},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ParallelSearchError):
            ParallelSearchParams(**kwargs)

    def test_with_replaces(self):
        params = ParallelSearchParams(num_tsws=2)
        assert params.with_(num_tsws=6).num_tsws == 6
        assert params.num_tsws == 2


class TestTaxonomy:
    def test_paper_configuration_classification(self):
        params = ParallelSearchParams(num_tsws=4, clws_per_tsw=4, diversify=True)
        classification = classify(params)
        assert classification.high_level_control is ControlCardinality.P_CONTROL
        assert classification.low_level_control is ControlCardinality.ONE_CONTROL
        assert classification.communication is CommunicationType.RIGID_SYNCHRONIZATION
        assert classification.differentiation is SearchDifferentiation.MPSS
        assert ParallelisationStrategy.MULTI_SEARCH_THREADS in classification.strategies
        assert ParallelisationStrategy.FUNCTIONAL_DECOMPOSITION in classification.strategies

    def test_single_tsw_is_one_control_spss(self):
        params = ParallelSearchParams(num_tsws=1, clws_per_tsw=2, diversify=True)
        classification = classify(params)
        assert classification.high_level_control is ControlCardinality.ONE_CONTROL
        assert classification.differentiation is SearchDifferentiation.SPSS

    def test_no_diversification_is_spss(self):
        params = ParallelSearchParams(num_tsws=4, clws_per_tsw=1, diversify=False)
        assert classify(params).differentiation is SearchDifferentiation.SPSS

    def test_describe_mentions_all_dimensions(self):
        text = classify(ParallelSearchParams()).describe()
        assert "p-control" in text
        assert "RS" in text
