"""Backend-parity suite: simulated / threads / processes run the same protocol.

For a fixed seed on a small circuit every backend must (a) improve on the
initial solution, (b) return a valid placement, and (c) — in homogeneous
wait-for-all mode, where no timing-dependent interrupts fire — be run-to-run
deterministic.  The suite also locks in that everything the process backend
ships across OS-process boundaries pickles.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.parallel import ParallelSearchParams, run_parallel_search
from repro.parallel.messages import (
    ClwResult,
    ClwTask,
    GlobalStart,
    ReportNow,
    TswResult,
)
from repro.placement import load_benchmark
from repro.pvm import homogeneous_cluster
from repro.pvm.message import Message
from repro.pvm.process import Compute, Receive, Send, Spawn
from repro.tabu import TabuSearchParams

CIRCUIT = "mini64"
BACKENDS = ("simulated", "threads", "processes")


def parity_params(seed: int = 11) -> ParallelSearchParams:
    return ParallelSearchParams(
        num_tsws=2,
        clws_per_tsw=1,
        global_iterations=2,
        sync_mode="homogeneous",  # wait-for-all: no timing-dependent interrupts
        tabu=TabuSearchParams(local_iterations=3, pairs_per_step=3, move_depth=2),
        seed=seed,
    )


@pytest.fixture(scope="module")
def netlist():
    return load_benchmark(CIRCUIT)


def run_once(netlist, backend):
    return run_parallel_search(
        netlist,
        parity_params(),
        backend=backend,
        cluster=homogeneous_cluster(4),
        join_timeout=300.0,
    )


@pytest.fixture(scope="module")
def results(netlist):
    """One pair of identically-seeded runs per backend."""
    return {
        backend: (run_once(netlist, backend), run_once(netlist, backend))
        for backend in BACKENDS
    }


class TestBackendParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_improves_on_initial_solution(self, results, backend):
        for result in results[backend]:
            assert result.best_cost <= result.initial_cost
            assert result.best_cost < result.initial_cost  # strict on this workload

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_solution_invariants(self, results, netlist, backend):
        for result in results[backend]:
            solution = result.best_solution
            assert solution.shape == (netlist.num_cells,)
            assert len(np.unique(solution)) == netlist.num_cells  # a permutation

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_homogeneous_mode_is_run_to_run_deterministic(self, results, backend):
        first, second = results[backend]
        assert first.best_cost == pytest.approx(second.best_cost, abs=0.0)
        assert np.array_equal(first.best_solution, second.best_solution)

    def test_backends_reach_comparable_quality(self, results):
        costs = {backend: results[backend][0].best_cost for backend in BACKENDS}
        spread = max(costs.values()) - min(costs.values())
        assert spread < 0.25, costs


class TestSpawnSafety:
    """Everything that crosses an OS-process boundary must pickle."""

    def test_message_envelope_round_trips(self):
        payload = GlobalStart(
            global_iteration=3, solution=np.arange(16, dtype=np.int64), tabu_payload=()
        )
        message = Message(
            src=1, dst=2, tag="global_start", payload=payload, size_bytes=128,
            send_time=0.5, arrival_time=0.7,
        )
        clone = pickle.loads(pickle.dumps(message))
        assert (clone.src, clone.dst, clone.tag) == (1, 2, "global_start")
        assert np.array_equal(clone.payload.solution, payload.solution)

    def test_protocol_payloads_round_trip(self):
        payloads = [
            GlobalStart(global_iteration=0, solution=np.arange(8, dtype=np.int64)),
            ReportNow(round_id=4),
            ClwTask(round_id=1, solution=np.arange(8, dtype=np.int64)),
            ClwResult(
                clw_index=0, round_id=1, pairs=((1, 2), (3, 4)), cost_before=1.0,
                cost_after=0.9, trials=6, interrupted=False,
            ),
            TswResult(
                tsw_index=1, global_iteration=0, best_solution=np.arange(8, dtype=np.int64),
                best_cost=0.8, local_iterations_done=3, interrupted=False, evaluations=42,
                tabu_payload=(("swap", (1, 2), 9),), trace=((0.1, 1.0),),
            ),
        ]
        for payload in payloads:
            clone = pickle.loads(pickle.dumps(payload))
            assert type(clone) is type(payload)

    def test_syscalls_round_trip(self):
        def gen(ctx):
            yield  # pragma: no cover - only pickled by reference, never run

        syscalls = [
            Compute(work_units=3.0, label="x"),
            Send(dst=2, tag="t", payload={"k": np.arange(3)}),
            Receive(tag="t", src=1, blocking=True, timeout=0.5),
            Spawn(func=load_benchmark, args=("mini64",), kwargs={}, name="w"),
        ]
        for syscall in syscalls:
            clone = pickle.loads(pickle.dumps(syscall))
            assert type(clone) is type(syscall)
