"""Unit tests for the time-to-quality speedup metric."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.metrics import (
    CostTrace,
    common_quality_threshold,
    speedup_curve,
    speedup_to_quality,
    time_to_quality,
)


def linear_trace(rate: float, label: str = "") -> CostTrace:
    """Cost falls from 1.0 at `rate` per unit time, sampled every 0.5 units."""
    points = [(t * 0.5, max(0.0, 1.0 - rate * t * 0.5)) for t in range(21)]
    return CostTrace.from_pairs(points, label=label)


class TestTimeToQuality:
    def test_faster_trace_reaches_sooner(self):
        slow = linear_trace(0.05)
        fast = linear_trace(0.10)
        assert time_to_quality(fast, 0.5) < time_to_quality(slow, 0.5)

    def test_unreachable_quality_is_none(self):
        assert time_to_quality(linear_trace(0.01), -1.0) is None


class TestSpeedupToQuality:
    def test_basic_ratio(self):
        baseline = linear_trace(0.05)
        parallel = linear_trace(0.10)
        speedup = speedup_to_quality(baseline, parallel, threshold=0.5)
        assert speedup == pytest.approx(2.0)

    def test_none_when_either_misses(self):
        baseline = linear_trace(0.05)
        never = CostTrace.from_pairs([(0, 1.0), (10, 0.9)])
        assert speedup_to_quality(baseline, never, threshold=0.5) is None
        assert speedup_to_quality(never, baseline, threshold=0.5) is None

    def test_zero_baseline_time_is_undefined(self):
        instant = CostTrace.from_pairs([(0.0, 0.1)])
        other = linear_trace(0.05)
        assert speedup_to_quality(instant, other, threshold=0.5) is None


class TestCommonThreshold:
    def test_threshold_reached_by_all(self):
        traces = [linear_trace(0.02), linear_trace(0.05), linear_trace(0.10)]
        threshold = common_quality_threshold(traces)
        assert all(trace.time_to_reach(threshold) is not None for trace in traces)
        # the threshold equals the worst trace's best cost
        assert threshold == pytest.approx(max(t.best_cost for t in traces))

    def test_slack_relaxes_threshold(self):
        traces = [linear_trace(0.05)]
        assert common_quality_threshold(traces, slack=0.1) > common_quality_threshold(traces)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            common_quality_threshold([])

    def test_negative_slack_rejected(self):
        with pytest.raises(ExperimentError):
            common_quality_threshold([linear_trace(0.05)], slack=-0.1)


class TestSpeedupCurve:
    def test_curve_shape(self):
        traces = {1: linear_trace(0.05), 2: linear_trace(0.08), 4: linear_trace(0.12)}
        points = speedup_curve(traces, baseline_workers=1)
        assert [p.workers for p in points] == [1, 2, 4]
        assert points[0].speedup == pytest.approx(1.0)
        assert points[1].speedup > 1.0
        assert points[2].speedup > points[1].speedup
        assert all(p.threshold == points[0].threshold for p in points)

    def test_missing_baseline_rejected(self):
        with pytest.raises(ExperimentError, match="baseline"):
            speedup_curve({2: linear_trace(0.1)}, baseline_workers=1)

    def test_explicit_threshold_used(self):
        traces = {1: linear_trace(0.05), 2: linear_trace(0.10)}
        points = speedup_curve(traces, baseline_workers=1, threshold=0.8)
        assert points[0].threshold == pytest.approx(0.8)

    def test_unreachable_explicit_threshold_rejected(self):
        traces = {1: linear_trace(0.01), 2: linear_trace(0.02)}
        with pytest.raises(ExperimentError, match="does not reach"):
            speedup_curve(traces, baseline_workers=1, threshold=-1.0)

    def test_configuration_missing_threshold_gets_none_speedup(self):
        good = linear_trace(0.10)
        bad = CostTrace.from_pairs([(0.0, 1.0), (5.0, 0.95)])
        points = speedup_curve({1: good, 2: bad}, baseline_workers=1, threshold=0.5)
        by_workers = {p.workers: p for p in points}
        assert by_workers[1].speedup == pytest.approx(1.0)
        assert by_workers[2].speedup is None
