"""Unit tests for the plain-text report formatting."""

from __future__ import annotations

import pytest

from repro.metrics import format_mapping, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["name", "value"], [("a", 1), ("long-name", 2.5)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "name" in lines[0] and "value" in lines[0]
        # all rows have the same width
        assert len({len(line) for line in lines if line}) <= 2

    def test_title_included(self):
        text = format_table(["a"], [(1,)], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_formatting(self):
        text = format_table(["x"], [(1.23456789,)], float_format=".2f")
        assert "1.23" in text
        assert "1.2345" not in text

    def test_none_rendered_as_dash(self):
        text = format_table(["x"], [(None,)])
        assert "-" in text.splitlines()[-1]

    def test_bool_rendered_as_yes_no(self):
        text = format_table(["x"], [(True,), (False,)])
        assert "yes" in text
        assert "no" in text

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [(1,)])


class TestFormatSeries:
    def test_series(self):
        text = format_series([1, 2, 3], [0.1, 0.2, 0.3], x_label="n", y_label="cost")
        assert "n" in text and "cost" in text
        assert len(text.splitlines()) == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            format_series([1, 2], [1.0])


class TestFormatMapping:
    def test_mapping(self):
        text = format_mapping({"cells": 56, "best_cost": 0.4321})
        assert "cells" in text
        assert "0.4321" in text
