"""Unit and property-based tests for cost traces."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.metrics import CostTrace


class TestConstruction:
    def test_from_pairs(self):
        trace = CostTrace.from_pairs([(0, 1.0), (1, 0.8)], label="run")
        assert len(trace) == 2
        assert trace.label == "run"

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            CostTrace(points=())

    def test_decreasing_times_rejected(self):
        with pytest.raises(ExperimentError, match="non-decreasing"):
            CostTrace(points=((1.0, 0.5), (0.5, 0.4)))


class TestQueries:
    @pytest.fixture()
    def trace(self):
        return CostTrace.from_pairs([(0, 1.0), (1, 0.8), (2, 0.9), (3, 0.6), (4, 0.7)])

    def test_best_and_final(self, trace):
        assert trace.best_cost == pytest.approx(0.6)
        assert trace.final_cost == pytest.approx(0.7)
        assert trace.duration == pytest.approx(4.0)

    def test_time_to_reach(self, trace):
        assert trace.time_to_reach(1.0) == 0
        assert trace.time_to_reach(0.8) == 1
        assert trace.time_to_reach(0.65) == 3
        assert trace.time_to_reach(0.1) is None

    def test_envelope_is_monotone(self, trace):
        envelope = trace.envelope()
        costs = envelope.costs
        assert all(b <= a for a, b in zip(costs, costs[1:]))
        assert envelope.costs[-1] == pytest.approx(0.6)

    def test_cost_at(self, trace):
        assert trace.cost_at(-1.0) == pytest.approx(1.0)
        assert trace.cost_at(0.5) == pytest.approx(1.0)
        assert trace.cost_at(2.5) == pytest.approx(0.8)  # best so far at t=2.5
        assert trace.cost_at(10.0) == pytest.approx(0.6)

    def test_resampled(self, trace):
        resampled = trace.resampled([0.0, 2.0, 4.0])
        assert resampled.times == (0.0, 2.0, 4.0)
        assert resampled.costs == (1.0, 0.8, 0.6)

    def test_times_and_costs(self, trace):
        assert trace.times == (0, 1, 2, 3, 4)
        assert trace.costs == (1.0, 0.8, 0.9, 0.6, 0.7)


class TestTraceProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        costs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=40),
    )
    def test_envelope_below_raw_and_monotone(self, costs):
        trace = CostTrace.from_pairs([(float(i), c) for i, c in enumerate(costs)])
        envelope = trace.envelope()
        assert all(e <= c + 1e-12 for e, c in zip(envelope.costs, trace.costs))
        assert all(b <= a + 1e-12 for a, b in zip(envelope.costs, envelope.costs[1:]))
        assert envelope.best_cost == pytest.approx(trace.best_cost)

    @settings(max_examples=80, deadline=None)
    @given(
        costs=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=40),
        threshold=st.floats(0.0, 10.0),
    )
    def test_time_to_reach_consistency(self, costs, threshold):
        trace = CostTrace.from_pairs([(float(i), c) for i, c in enumerate(costs)])
        moment = trace.time_to_reach(threshold)
        if moment is None:
            assert all(c > threshold for c in trace.costs)
        else:
            assert trace.cost_at(moment) <= threshold
            # no earlier point reaches the threshold
            earlier = [c for t, c in trace.points if t < moment]
            assert all(c > threshold for c in earlier)
