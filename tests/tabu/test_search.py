"""Unit tests for the serial tabu-search engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TabuSearchError
from repro.placement import CostEvaluator, Layout, load_benchmark, random_placement
from repro.tabu import (
    CompoundMove,
    SwapMove,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    full_range,
    partition_cells,
)


def make_search(seed: int = 1, **param_overrides) -> TabuSearch:
    layout = Layout(load_benchmark("mini64"))
    evaluator = CostEvaluator(random_placement(layout, seed=seed))
    params = TabuSearchParams(**param_overrides) if param_overrides else TabuSearchParams()
    return TabuSearch(evaluator, params, seed=seed)


class TestConstruction:
    def test_invalid_candidate_moves_rejected(self):
        layout = Layout(load_benchmark("tiny16"))
        evaluator = CostEvaluator(random_placement(layout, seed=0))
        with pytest.raises(TabuSearchError):
            TabuSearch(evaluator, candidate_moves=0)

    def test_candidate_ranges_must_match_count(self):
        layout = Layout(load_benchmark("tiny16"))
        evaluator = CostEvaluator(random_placement(layout, seed=0))
        with pytest.raises(TabuSearchError):
            TabuSearch(
                evaluator,
                candidate_moves=2,
                candidate_ranges=[full_range(16)],
            )

    def test_initial_best_is_current(self):
        search = make_search()
        assert search.best_cost == pytest.approx(search.current_cost)
        assert search.iteration == 0


class TestStep:
    def test_step_advances_iteration_and_tracks_best(self):
        search = make_search()
        result = search.step()
        assert result.iteration == 1
        assert search.iteration == 1
        assert search.best_cost <= result.cost_after + 1e-12

    def test_step_usually_accepts(self):
        search = make_search()
        accepted = sum(search.step().accepted for _ in range(10))
        assert accepted >= 8  # with a fresh tabu list nearly everything is acceptable

    def test_best_solution_matches_best_cost(self):
        search = make_search()
        for _ in range(15):
            search.step()
        best = search.best_solution
        evaluator = CostEvaluator(
            random_placement(search.evaluator.placement.layout, seed=0),
            reference=search.evaluator.reference,
        )
        evaluator.install_solution(best)
        # small tolerance: the search's timing term is a surrogate refreshed
        # every few commits, the replay above is exact
        assert evaluator.cost() == pytest.approx(search.best_cost, abs=0.05)


class TestRun:
    def test_run_improves_cost(self):
        search = make_search()
        initial = search.current_cost
        result = search.run(TerminationCriteria(max_iterations=30))
        assert result.best_cost < initial
        assert result.iterations == 30
        assert len(result.trace) == 30
        assert result.evaluations > 0

    def test_run_stops_at_target_cost(self):
        search = make_search()
        generous_target = search.current_cost * 0.999
        result = search.run(TerminationCriteria(max_iterations=100, target_cost=generous_target))
        assert result.iterations < 100

    def test_trace_best_is_monotone(self):
        search = make_search()
        result = search.run(TerminationCriteria(max_iterations=25))
        bests = [point[3] for point in result.trace]
        assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(bests, bests[1:]))

    def test_determinism_same_seed(self):
        a = make_search(seed=7).run(TerminationCriteria(max_iterations=15))
        b = make_search(seed=7).run(TerminationCriteria(max_iterations=15))
        assert a.best_cost == pytest.approx(b.best_cost)
        assert np.array_equal(a.best_solution, b.best_solution)

    def test_different_seeds_differ(self):
        a = make_search(seed=7).run(TerminationCriteria(max_iterations=15))
        b = make_search(seed=8).run(TerminationCriteria(max_iterations=15))
        assert not np.array_equal(a.best_solution, b.best_solution)


class TestTabuBehaviour:
    def test_tabu_list_grows_and_expires(self):
        search = make_search(tabu_tenure=4)
        for _ in range(10):
            search.step()
        assert len(search.tabu_list) <= 4 * search.params.move_depth + 4

    def test_zero_tenure_never_blocks(self):
        search = make_search(tabu_tenure=0)
        results = [search.step() for _ in range(10)]
        assert all(not r.was_tabu for r in results)

    def test_consider_candidates_rejects_all_tabu_without_aspiration(self):
        search = make_search(aspiration="none", tabu_tenure=50)
        # hand-craft a candidate, accept it, then re-offer the same candidate:
        # the second time it must be rejected (tabu, no aspiration possible)
        move = CompoundMove(
            swaps=[SwapMove(1, 2, 0.0)], cost_before=1.0, cost_after=0.0, trials=1
        )
        first = search.consider_candidates([move])
        assert first.accepted
        second = search.consider_candidates([move])
        assert not second.accepted
        assert second.was_tabu

    def test_aspiration_allows_tabu_move_that_beats_best(self):
        search = make_search(aspiration="best", tabu_tenure=50)
        move = CompoundMove(
            swaps=[SwapMove(1, 2, 0.0)], cost_before=1.0, cost_after=0.0, trials=1
        )
        search.consider_candidates([move])
        # the same pair again: tabu, but a much better cost may trigger aspiration
        # (the reported cost is re-derived by the engine, so we only check the flags)
        result = search.consider_candidates([move])
        if result.accepted:
            assert result.used_aspiration

    def test_empty_candidates_stall(self):
        search = make_search()
        result = search.consider_candidates([])
        assert not result.accepted
        assert result.move is None


class TestAdoptSolution:
    def test_adopt_better_solution_updates_best(self):
        search = make_search()
        # run a second search to obtain a better solution
        donor = make_search(seed=2)
        donor.run(TerminationCriteria(max_iterations=30))
        search.adopt_solution(donor.best_solution)
        assert search.current_cost == pytest.approx(
            search.evaluator.cost()
        )

    def test_adopt_resets_memory_when_requested(self):
        search = make_search(tabu_tenure=10)
        for _ in range(5):
            search.step()
        assert len(search.tabu_list) > 0
        search.adopt_solution(search.best_solution, reset_memory=True)
        assert len(search.tabu_list) == 0

    def test_adopt_tabu_list_installs_payload(self):
        donor = make_search(seed=2, tabu_tenure=10)
        for _ in range(5):
            donor.step()
        payload = donor.tabu_list.to_payload()
        assert payload  # the donor actually recorded attributes
        search = make_search(tabu_tenure=10)
        installed = search.adopt_tabu_list(payload)
        assert search.tabu_list is installed
        assert search.tabu_list.to_payload() == payload
        assert search.tabu_list.tenure == search.params.tabu_tenure

    def test_adopt_tabu_list_explicit_tenure(self):
        search = make_search(tabu_tenure=10)
        installed = search.adopt_tabu_list((), tenure=3)
        assert installed.tenure == 3
        assert len(installed) == 0


class TestDiversifyIntegration:
    def test_diversify_depth_capped_by_range_size(self):
        layout = Layout(load_benchmark("mini64"))
        evaluator = CostEvaluator(random_placement(layout, seed=6))
        small_range = partition_cells(64, 8)[0]  # 8 cells -> cap = 2 swaps
        search = TabuSearch(evaluator, TabuSearchParams(), cell_range=small_range, seed=3)
        search.diversify(depth=20)
        # every performed swap records both of its cells in the frequency memory
        swaps_performed = search.frequency_memory.counts.sum() // 2
        assert swaps_performed <= max(1, len(small_range) // 4)

    def test_diversify_changes_solution_but_keeps_best(self):
        search = make_search()
        search.run(TerminationCriteria(max_iterations=10))
        best_before = search.best_cost
        search.diversify(depth=5)
        assert search.best_cost <= best_before + 1e-12

    def test_multi_candidate_search_with_ranges(self):
        layout = Layout(load_benchmark("mini64"))
        evaluator = CostEvaluator(random_placement(layout, seed=4))
        ranges = partition_cells(64, 3)
        search = TabuSearch(
            evaluator, TabuSearchParams(), candidate_moves=3, candidate_ranges=ranges, seed=5
        )
        initial = search.current_cost
        result = search.run(TerminationCriteria(max_iterations=15))
        assert result.best_cost < initial
