"""Unit tests for the tabu memory structures (short and long term)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TabuSearchError
from repro.tabu import AttributeScheme, FrequencyMemory, MoveAttribute, TabuList, swap_attributes


class TestMoveAttribute:
    def test_pair_is_order_independent(self):
        assert MoveAttribute.pair(3, 7) == MoveAttribute.pair(7, 3)

    def test_cell_attribute(self):
        assert MoveAttribute.cell(5).key == (5,)

    def test_swap_attributes_schemes(self):
        pair_attrs = swap_attributes(1, 2, AttributeScheme.PAIR)
        cell_attrs = swap_attributes(1, 2, AttributeScheme.CELL)
        assert len(pair_attrs) == 1
        assert len(cell_attrs) == 2
        assert pair_attrs[0].kind == "pair"
        assert {a.key for a in cell_attrs} == {(1,), (2,)}


class TestTabuList:
    def test_negative_tenure_rejected(self):
        with pytest.raises(TabuSearchError):
            TabuList(-1)

    def test_zero_tenure_never_tabu(self):
        tabu = TabuList(0)
        attrs = swap_attributes(1, 2)
        tabu.record(attrs, iteration=1)
        assert not tabu.is_tabu(attrs, iteration=1)
        assert len(tabu) == 0

    def test_recorded_attribute_is_tabu_within_tenure(self):
        tabu = TabuList(3)
        attrs = swap_attributes(1, 2)
        tabu.record(attrs, iteration=10)
        assert tabu.is_tabu(attrs, iteration=10)
        assert tabu.is_tabu(attrs, iteration=12)
        assert not tabu.is_tabu(attrs, iteration=13)

    def test_unrelated_attribute_not_tabu(self):
        tabu = TabuList(3)
        tabu.record(swap_attributes(1, 2), iteration=0)
        assert not tabu.is_tabu(swap_attributes(3, 4), iteration=1)

    def test_reverse_swap_is_tabu_with_pair_scheme(self):
        tabu = TabuList(5)
        tabu.record(swap_attributes(1, 2), iteration=0)
        assert tabu.is_tabu(swap_attributes(2, 1), iteration=1)

    def test_expire_removes_stale_entries(self):
        tabu = TabuList(2)
        tabu.record(swap_attributes(1, 2), iteration=0)
        tabu.record(swap_attributes(3, 4), iteration=5)
        removed = tabu.expire(iteration=4)
        assert removed == 1
        assert len(tabu) == 1

    def test_clear(self):
        tabu = TabuList(2)
        tabu.record(swap_attributes(1, 2), iteration=0)
        tabu.clear()
        assert len(tabu) == 0

    def test_re_recording_extends_tenure(self):
        tabu = TabuList(2)
        attrs = swap_attributes(1, 2)
        tabu.record(attrs, iteration=0)
        tabu.record(attrs, iteration=5)
        assert tabu.is_tabu(attrs, iteration=6)

    def test_payload_round_trip(self):
        tabu = TabuList(4)
        tabu.record(swap_attributes(1, 2), iteration=3)
        tabu.record(swap_attributes(5, 6, AttributeScheme.CELL), iteration=4)
        payload = tabu.to_payload()
        rebuilt = TabuList.from_payload(payload, tenure=4)
        assert len(rebuilt) == len(tabu)
        assert rebuilt.is_tabu(swap_attributes(2, 1), iteration=5)
        assert rebuilt.is_tabu(swap_attributes(5, 9, AttributeScheme.CELL), iteration=5)

    def test_membership_and_iteration(self):
        tabu = TabuList(4)
        attr = MoveAttribute.pair(1, 2)
        tabu.record([attr], iteration=0)
        assert attr in tabu
        assert list(tabu) == [attr]


class TestFrequencyMemory:
    def test_invalid_size_rejected(self):
        with pytest.raises(TabuSearchError):
            FrequencyMemory(0)

    def test_record_and_counts(self):
        memory = FrequencyMemory(10)
        memory.record_swap(1, 2)
        memory.record_swap(1, 5)
        assert memory.counts[1] == 2
        assert memory.counts[2] == 1
        assert memory.counts[0] == 0

    def test_least_moved_prefers_untouched_cells(self):
        memory = FrequencyMemory(6)
        rng = np.random.default_rng(0)
        for _ in range(5):
            memory.record_swap(0, 1)
        candidates = np.array([0, 1, 4])
        assert memory.least_moved(candidates, rng) == 4

    def test_least_moved_empty_candidates_rejected(self):
        memory = FrequencyMemory(6)
        with pytest.raises(TabuSearchError):
            memory.least_moved(np.array([], dtype=np.int64), np.random.default_rng(0))

    def test_reset(self):
        memory = FrequencyMemory(4)
        memory.record_swap(0, 1)
        memory.reset()
        assert memory.counts.sum() == 0

    def test_counts_read_only(self):
        memory = FrequencyMemory(4)
        with pytest.raises(ValueError):
            memory.counts[0] = 5
