"""Unit tests for the tabu memory structures (short and long term)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TabuSearchError
from repro.tabu import (
    ArrayTabuList,
    AttributeScheme,
    FrequencyMemory,
    MoveAttribute,
    TabuList,
    make_tabu_list,
    pair_attribute_indices,
    swap_attributes,
)
from repro.tabu.tabu_list import ARRAY_TABU_MAX_CELLS


class TestMoveAttribute:
    def test_pair_is_order_independent(self):
        assert MoveAttribute.pair(3, 7) == MoveAttribute.pair(7, 3)

    def test_cell_attribute(self):
        assert MoveAttribute.cell(5).key == (5,)

    def test_swap_attributes_schemes(self):
        pair_attrs = swap_attributes(1, 2, AttributeScheme.PAIR)
        cell_attrs = swap_attributes(1, 2, AttributeScheme.CELL)
        assert len(pair_attrs) == 1
        assert len(cell_attrs) == 2
        assert pair_attrs[0].kind == "pair"
        assert {a.key for a in cell_attrs} == {(1,), (2,)}


class TestTabuList:
    def test_negative_tenure_rejected(self):
        with pytest.raises(TabuSearchError):
            TabuList(-1)

    def test_zero_tenure_never_tabu(self):
        tabu = TabuList(0)
        attrs = swap_attributes(1, 2)
        tabu.record(attrs, iteration=1)
        assert not tabu.is_tabu(attrs, iteration=1)
        assert len(tabu) == 0

    def test_recorded_attribute_is_tabu_within_tenure(self):
        tabu = TabuList(3)
        attrs = swap_attributes(1, 2)
        tabu.record(attrs, iteration=10)
        assert tabu.is_tabu(attrs, iteration=10)
        assert tabu.is_tabu(attrs, iteration=12)
        assert not tabu.is_tabu(attrs, iteration=13)

    def test_unrelated_attribute_not_tabu(self):
        tabu = TabuList(3)
        tabu.record(swap_attributes(1, 2), iteration=0)
        assert not tabu.is_tabu(swap_attributes(3, 4), iteration=1)

    def test_reverse_swap_is_tabu_with_pair_scheme(self):
        tabu = TabuList(5)
        tabu.record(swap_attributes(1, 2), iteration=0)
        assert tabu.is_tabu(swap_attributes(2, 1), iteration=1)

    def test_expire_removes_stale_entries(self):
        tabu = TabuList(2)
        tabu.record(swap_attributes(1, 2), iteration=0)
        tabu.record(swap_attributes(3, 4), iteration=5)
        removed = tabu.expire(iteration=4)
        assert removed == 1
        assert len(tabu) == 1

    def test_clear(self):
        tabu = TabuList(2)
        tabu.record(swap_attributes(1, 2), iteration=0)
        tabu.clear()
        assert len(tabu) == 0

    def test_re_recording_extends_tenure(self):
        tabu = TabuList(2)
        attrs = swap_attributes(1, 2)
        tabu.record(attrs, iteration=0)
        tabu.record(attrs, iteration=5)
        assert tabu.is_tabu(attrs, iteration=6)

    def test_payload_round_trip(self):
        tabu = TabuList(4)
        tabu.record(swap_attributes(1, 2), iteration=3)
        tabu.record(swap_attributes(5, 6, AttributeScheme.CELL), iteration=4)
        payload = tabu.to_payload()
        rebuilt = TabuList.from_payload(payload, tenure=4)
        assert len(rebuilt) == len(tabu)
        assert rebuilt.is_tabu(swap_attributes(2, 1), iteration=5)
        assert rebuilt.is_tabu(swap_attributes(5, 9, AttributeScheme.CELL), iteration=5)

    def test_membership_and_iteration(self):
        tabu = TabuList(4)
        attr = MoveAttribute.pair(1, 2)
        tabu.record([attr], iteration=0)
        assert attr in tabu
        assert list(tabu) == [attr]


class TestPairAttributeIndices:
    def test_orientation_independent(self):
        pairs = np.array([[3, 7], [7, 3], [0, 9]])
        idx = pair_attribute_indices(pairs, 10)
        assert idx[0] == idx[1] == 3 * 10 + 7
        assert idx[2] == 9

    def test_empty(self):
        assert pair_attribute_indices(np.zeros((0, 2), dtype=np.int64), 10).size == 0


class TestArrayTabuList:
    def test_negative_tenure_rejected(self):
        with pytest.raises(TabuSearchError):
            ArrayTabuList(-1, 10)

    def test_zero_tenure_never_tabu(self):
        tabu = ArrayTabuList(0, 10)
        pairs = np.array([[1, 2]])
        tabu.record_pairs(pairs, 1)
        assert not tabu.is_tabu_mask(pairs, 1).any()
        assert len(tabu) == 0

    @pytest.mark.parametrize("scheme", [AttributeScheme.PAIR, AttributeScheme.CELL])
    def test_mask_matches_dict_oracle_under_random_walk(self, scheme):
        """Random record/query interleavings: array == dict, bit for bit."""
        rng = np.random.default_rng(3)
        n = 20
        dict_list = TabuList(5)
        array_list = ArrayTabuList(5, n)
        for iteration in range(1, 60):
            queries = rng.integers(0, n, size=(8, 2))
            queries = queries[queries[:, 0] != queries[:, 1]]
            dict_mask = dict_list.is_tabu_mask(queries, iteration, scheme)
            array_mask = array_list.is_tabu_mask(queries, iteration, scheme)
            assert np.array_equal(dict_mask, array_mask)
            assert dict_list.is_tabu_pairs(queries, iteration, scheme) == (
                array_list.is_tabu_pairs(queries, iteration, scheme)
            )
            if queries.shape[0]:
                recorded = queries[: int(rng.integers(0, queries.shape[0] + 1))]
                dict_list.record_pairs(recorded, iteration, scheme)
                array_list.record_pairs(recorded, iteration, scheme)
            dict_list.expire(iteration)
            array_list.expire(iteration)
            assert set(dict_list.to_payload()) == set(array_list.to_payload())
            assert len(dict_list) == len(array_list)

    def test_reverse_pair_is_tabu(self):
        tabu = ArrayTabuList(5, 10)
        tabu.record_pairs(np.array([[1, 2]]), 0)
        assert tabu.is_tabu_mask(np.array([[2, 1]]), 1).any()

    def test_lazy_expiry_drops_entries_from_live_views(self):
        tabu = ArrayTabuList(2, 10)
        tabu.record_pairs(np.array([[1, 2]]), 0)  # expiry 2
        tabu.record_pairs(np.array([[3, 4]]), 5)  # expiry 7
        assert len(tabu) == 1  # first entry lapsed by iteration 5
        tabu.expire(7)  # lazy: nothing swept, live view shrinks
        assert len(tabu) == 0
        assert tabu.to_payload() == ()

    def test_payload_round_trips_across_implementations(self):
        dict_list = TabuList(4)
        dict_list.record(swap_attributes(1, 2), iteration=3)
        dict_list.record(swap_attributes(5, 6, AttributeScheme.CELL), iteration=4)
        array_list = ArrayTabuList.from_payload(dict_list.to_payload(), 4, 10)
        assert set(array_list.to_payload()) == set(dict_list.to_payload())
        back = TabuList.from_payload(array_list.to_payload(), 4)
        assert set(back.to_payload()) == set(dict_list.to_payload())
        assert back.is_tabu(swap_attributes(2, 1), iteration=5)

    def test_foreign_attribute_kinds_survive_round_trip(self):
        payload = (("swap", (1, 2), 5), ("region", (3,), 9))
        array_list = ArrayTabuList.from_payload(payload, 4, 10)
        assert set(array_list.to_payload()) == set(payload)
        assert MoveAttribute(kind="swap", key=(1, 2)) in array_list
        assert array_list.is_tabu([MoveAttribute(kind="swap", key=(1, 2))], 4)
        assert not array_list.is_tabu([MoveAttribute(kind="swap", key=(1, 2))], 5)
        # mask queries never consult foreign kinds
        assert not array_list.is_tabu_mask(np.array([[1, 2]]), 4).any()

    def test_attribute_level_compat_surface(self):
        tabu = ArrayTabuList(4, 10)
        attr = MoveAttribute.pair(1, 2)
        tabu.record([attr], iteration=0)
        assert attr in tabu
        assert list(tabu) == [attr]
        tabu.clear()
        assert len(tabu) == 0

    def test_make_tabu_list_selects_backend(self):
        assert isinstance(make_tabu_list(5, 100, vectorized=True), ArrayTabuList)
        assert isinstance(make_tabu_list(5, 100, vectorized=False), TabuList)
        # above the dense cap the vectorized backend stays array-based and
        # switches its pair store to the hashed layout internally
        oversized = ARRAY_TABU_MAX_CELLS + 1
        big = make_tabu_list(5, oversized, vectorized=True)
        assert isinstance(big, ArrayTabuList)
        assert not big._dense_pairs


class TestDictTabuListBatchSurface:
    def test_record_pairs_matches_attribute_records(self):
        batch = TabuList(5)
        loop = TabuList(5)
        pairs = np.array([[1, 2], [3, 4]])
        batch.record_pairs(pairs, 7)
        for a, b in pairs.tolist():
            loop.record(swap_attributes(a, b), 7)
        assert set(batch.to_payload()) == set(loop.to_payload())

    def test_amortised_expire_still_exact(self):
        tabu = TabuList(2)
        tabu.record(swap_attributes(1, 2), iteration=0)
        tabu.record(swap_attributes(1, 2), iteration=1)  # re-record extends
        tabu.record(swap_attributes(3, 4), iteration=1)
        assert tabu.expire(2) == 0  # nothing lapsed yet (expiries are 3)
        assert tabu.expire(3) == 2
        assert len(tabu) == 0


class TestHashedPairBackend:
    """Above the dense cap the pair store switches to the exact-key hash
    table; these tests pin it to the dense layout and the dict oracle."""

    NUM_CELLS = 6000  # > ARRAY_TABU_MAX_CELLS, so auto-selects hashed

    def _trajectory(self, tabu, rng):
        n = self.NUM_CELLS
        masks, lens = [], []
        for iteration in range(120):
            pairs = np.column_stack(
                [
                    rng.integers(0, n, size=16),
                    rng.integers(0, n, size=16),
                ]
            )
            keep = pairs[:, 0] != pairs[:, 1]
            tabu.record_pairs(pairs[keep][:6], iteration)
            masks.append(tabu.is_tabu_mask(pairs, iteration).copy())
            # no-op for the array backends; brings the dict oracle's
            # amortised expiry current so len() means "live right now"
            tabu.expire(iteration)
            lens.append(len(tabu))
        return masks, lens, set(tabu.to_payload())

    def test_hashed_matches_dense_and_oracle(self):
        hashed = ArrayTabuList(9, self.NUM_CELLS)
        dense = ArrayTabuList(9, self.NUM_CELLS, max_dense_cells=10**9)
        oracle = TabuList(9)
        assert not hashed._dense_pairs
        assert dense._dense_pairs
        h = self._trajectory(hashed, np.random.default_rng(42))
        d = self._trajectory(dense, np.random.default_rng(42))
        o = self._trajectory(oracle, np.random.default_rng(42))
        for got, want in ((h, d), (h, o)):
            for mask_got, mask_want in zip(got[0], want[0]):
                assert np.array_equal(mask_got, mask_want)
            assert got[1] == want[1]
            assert got[2] == want[2]

    def test_payload_roundtrip_and_clear(self):
        hashed = ArrayTabuList(7, self.NUM_CELLS)
        rng = np.random.default_rng(3)
        pairs = np.column_stack(
            [rng.integers(0, self.NUM_CELLS, 8), rng.integers(0, self.NUM_CELLS, 8)]
        )
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        hashed.record_pairs(pairs, 5)
        payload = hashed.to_payload()
        clone = ArrayTabuList.from_payload(payload, 7, self.NUM_CELLS)
        assert not clone._dense_pairs
        assert set(clone.to_payload()) == set(payload)
        assert np.array_equal(
            clone.is_tabu_mask(pairs, 6), hashed.is_tabu_mask(pairs, 6)
        )
        hashed.clear()
        assert len(hashed) == 0
        assert not hashed.is_tabu_mask(pairs, 6).any()

    def test_attribute_surface(self):
        hashed = ArrayTabuList(4, self.NUM_CELLS)
        attr = MoveAttribute.pair(4500, 5999)
        hashed.record([attr], iteration=0)
        assert attr in hashed
        assert hashed.is_tabu([attr], 3)
        assert not hashed.is_tabu([attr], 4)
        assert list(hashed) == [attr]

    def test_stale_pruning_bounds_capacity(self):
        from repro.tabu.tabu_list import _HashedPairTable

        table = _HashedPairTable()
        # tenure-9-style churn: expiries lapse long before capacity is hit
        for i in range(3000):
            table.store(i * 977 % (10**9), expiry=i + 9, floor=i)
        assert table._keys.size <= 1 << 10


class TestFrequencyMemory:
    def test_invalid_size_rejected(self):
        with pytest.raises(TabuSearchError):
            FrequencyMemory(0)

    def test_record_and_counts(self):
        memory = FrequencyMemory(10)
        memory.record_swap(1, 2)
        memory.record_swap(1, 5)
        assert memory.counts[1] == 2
        assert memory.counts[2] == 1
        assert memory.counts[0] == 0

    def test_least_moved_prefers_untouched_cells(self):
        memory = FrequencyMemory(6)
        rng = np.random.default_rng(0)
        for _ in range(5):
            memory.record_swap(0, 1)
        candidates = np.array([0, 1, 4])
        assert memory.least_moved(candidates, rng) == 4

    def test_least_moved_empty_candidates_rejected(self):
        memory = FrequencyMemory(6)
        with pytest.raises(TabuSearchError):
            memory.least_moved(np.array([], dtype=np.int64), np.random.default_rng(0))

    def test_record_swaps_bulk_matches_scalar(self):
        bulk = FrequencyMemory(10)
        scalar = FrequencyMemory(10)
        pairs = np.array([[1, 2], [1, 5], [2, 5], [0, 9]])
        bulk.record_swaps(pairs)
        for a, b in pairs.tolist():
            scalar.record_swap(a, b)
        assert np.array_equal(bulk.counts, scalar.counts)

    def test_record_swaps_empty_is_noop(self):
        memory = FrequencyMemory(4)
        memory.record_swaps(np.zeros((0, 2), dtype=np.int64))
        assert memory.counts.sum() == 0

    def test_reset(self):
        memory = FrequencyMemory(4)
        memory.record_swap(0, 1)
        memory.reset()
        assert memory.counts.sum() == 0

    def test_counts_read_only(self):
        memory = FrequencyMemory(4)
        with pytest.raises(ValueError):
            memory.counts[0] = 5
