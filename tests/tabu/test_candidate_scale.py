"""Large-instance behaviour of the vectorised candidate sampler.

Pins the decision documented on :func:`sample_candidate_pairs_array` not to
deduplicate batches: at the 10k-cell scale the measured duplicate rate is
orders of magnitude below anything a dedup pass could pay for.
"""

from __future__ import annotations

import numpy as np

from repro.tabu.candidate import collision_probability, sample_candidate_pairs_array

NUM_CELLS = 10_000
BATCH = 256


def _duplicate_fraction(pairs: np.ndarray) -> float:
    """Fraction of a batch that repeats an earlier unordered pair."""
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    keys = lo * np.int64(NUM_CELLS) + hi
    return 1.0 - np.unique(keys).size / keys.size


class TestDuplicateRateAtScale:
    def test_duplicate_rate_is_negligible(self):
        rng = np.random.default_rng(0)
        range_cells = np.arange(NUM_CELLS, dtype=np.int64)
        duplicates = 0.0
        batches = 200
        for _ in range(batches):
            pairs = sample_candidate_pairs_array(range_cells, NUM_CELLS, BATCH, rng)
            duplicates += _duplicate_fraction(pairs)
        rate = duplicates / batches
        # theory: ~C(m,2)/(n-1)^2 per batch ≈ 3.3e-4 at n=10k, m=256;
        # the 1% bar leaves two orders of magnitude of slack while still
        # catching a sampler regression that collapses the key space
        assert rate < 0.01, f"duplicate rate {rate:.4%}"

    def test_rate_tracks_collision_probability(self):
        rng = np.random.default_rng(1)
        range_cells = np.arange(NUM_CELLS, dtype=np.int64)
        pair_of_pairs = BATCH * (BATCH - 1) / 2
        expected = pair_of_pairs * collision_probability(NUM_CELLS)
        duplicates = 0.0
        batches = 400
        for _ in range(batches):
            pairs = sample_candidate_pairs_array(range_cells, NUM_CELLS, BATCH, rng)
            duplicates += _duplicate_fraction(pairs) * BATCH
        mean_duplicates = duplicates / batches
        # within 5x of theory either way (loose: it's a sanity pin, not a
        # statistics exam)
        assert mean_duplicates < 5 * expected + 0.1
        assert mean_duplicates > expected / 5 - 0.1

    def test_no_self_pairs_at_scale(self):
        rng = np.random.default_rng(2)
        range_cells = np.arange(NUM_CELLS, dtype=np.int64)
        pairs = sample_candidate_pairs_array(range_cells, NUM_CELLS, 4096, rng)
        assert (pairs[:, 0] != pairs[:, 1]).all()
        assert pairs.min() >= 0 and pairs.max() < NUM_CELLS
