"""Unit tests for aspiration criteria, search parameters and termination."""

from __future__ import annotations

import pytest

from repro.errors import TabuSearchError
from repro.tabu import (
    BestCostAspiration,
    ImprovementAspiration,
    NoAspiration,
    TabuSearchParams,
    TerminationCriteria,
)
from repro.tabu.search import make_aspiration


class TestAspirationCriteria:
    def test_best_cost_aspiration(self):
        asp = BestCostAspiration()
        assert asp.permits(candidate_cost=0.4, current_cost=0.6, best_cost=0.5)
        assert not asp.permits(candidate_cost=0.55, current_cost=0.6, best_cost=0.5)
        assert not asp.permits(candidate_cost=0.5, current_cost=0.6, best_cost=0.5)

    def test_best_cost_aspiration_with_margin(self):
        asp = BestCostAspiration(margin=0.1)
        # must be at least 10% better than the best
        assert asp.permits(candidate_cost=0.44, current_cost=0.6, best_cost=0.5)
        assert not asp.permits(candidate_cost=0.46, current_cost=0.6, best_cost=0.5)

    def test_improvement_aspiration(self):
        asp = ImprovementAspiration()
        assert asp.permits(candidate_cost=0.55, current_cost=0.6, best_cost=0.5)
        assert not asp.permits(candidate_cost=0.65, current_cost=0.6, best_cost=0.5)

    def test_no_aspiration(self):
        asp = NoAspiration()
        assert not asp.permits(candidate_cost=0.0, current_cost=1.0, best_cost=1.0)

    def test_factory(self):
        assert isinstance(make_aspiration(TabuSearchParams(aspiration="best")), BestCostAspiration)
        assert isinstance(
            make_aspiration(TabuSearchParams(aspiration="improvement")), ImprovementAspiration
        )
        assert isinstance(make_aspiration(TabuSearchParams(aspiration="none")), NoAspiration)


class TestTabuSearchParams:
    def test_defaults_valid(self):
        params = TabuSearchParams()
        assert params.tabu_tenure > 0
        assert params.local_iterations > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tabu_tenure": -1},
            {"local_iterations": 0},
            {"pairs_per_step": 0},
            {"move_depth": 0},
            {"diversification_depth": -1},
            {"aspiration": "bogus"},
            {"aspiration_margin": 1.5},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(TabuSearchError):
            TabuSearchParams(**kwargs)

    def test_with_replaces_fields(self):
        params = TabuSearchParams(tabu_tenure=5)
        updated = params.with_(tabu_tenure=9)
        assert updated.tabu_tenure == 9
        assert params.tabu_tenure == 5

    def test_scaled_for_circuit_grows_tenure(self):
        params = TabuSearchParams(tabu_tenure=3)
        scaled = params.scaled_for_circuit(2500)
        assert scaled.tabu_tenure >= 25 // 2
        assert scaled.tabu_tenure >= params.tabu_tenure

    def test_scaled_for_circuit_invalid(self):
        with pytest.raises(TabuSearchError):
            TabuSearchParams().scaled_for_circuit(0)


class TestTerminationCriteria:
    def test_requires_at_least_one_criterion(self):
        with pytest.raises(TabuSearchError):
            TerminationCriteria()

    def test_max_iterations(self):
        criteria = TerminationCriteria(max_iterations=5)
        assert not criteria.should_stop(iteration=4, best_cost=1.0, stall=0)
        assert criteria.should_stop(iteration=5, best_cost=1.0, stall=0)

    def test_target_cost(self):
        criteria = TerminationCriteria(target_cost=0.3)
        assert not criteria.should_stop(iteration=0, best_cost=0.5, stall=0)
        assert criteria.should_stop(iteration=0, best_cost=0.3, stall=0)

    def test_max_stall(self):
        criteria = TerminationCriteria(max_stall=3)
        assert not criteria.should_stop(iteration=10, best_cost=1.0, stall=2)
        assert criteria.should_stop(iteration=10, best_cost=1.0, stall=3)

    def test_invalid_values_rejected(self):
        with pytest.raises(TabuSearchError):
            TerminationCriteria(max_iterations=0)
        with pytest.raises(TabuSearchError):
            TerminationCriteria(max_stall=0)
