"""Trajectory identity of the vectorized and reference iteration drivers.

The ``"vectorized"`` driver (array-backed tabu memory, fused step-1 scoring,
masked selection, end-state accepts) and the ``"reference"`` driver (dict
tabu memory, per-attribute Python loops) implement the *same* algorithm; a
seeded run of the two must walk bit-identical trajectories — same costs,
same accepted moves, same tabu states — on every domain, serially and on
the simulated parallel backend.  This suite is the oracle that keeps the
fast driver honest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro import (
    ParallelSearchParams,
    TabuSearch,
    TabuSearchParams,
    TerminationCriteria,
    run_parallel_search,
)
from repro.core import get_domain
from repro.tabu import partition_cells


@dataclass(frozen=True)
class DomainSpec:
    domain: str
    instance: str
    #: Small instance used for the tabu-heavy runs (few distinct pairs, so
    #: long tenures make tabu hits and aspiration overrides actually occur).
    dense_instance: str


SPECS = [
    DomainSpec(domain="placement", instance="mini64", dense_instance="tiny16"),
    DomainSpec(domain="qap", instance="rand32", dense_instance="rand12"),
]


@pytest.fixture(scope="module", params=SPECS, ids=lambda spec: spec.domain)
def spec(request):
    return request.param


@pytest.fixture(scope="module")
def problem(spec):
    return get_domain(spec.domain).build_problem(spec.instance, reference_seed=0)


@pytest.fixture(scope="module")
def dense_problem(spec):
    return get_domain(spec.domain).build_problem(spec.dense_instance, reference_seed=0)


def _payload_set(search: TabuSearch):
    return set(search.tabu_list.to_payload())


def _walk(problem, tabu_params: TabuSearchParams, *, iterations: int, ranges=None):
    """Step a search manually, recording the full per-iteration trajectory."""
    evaluator = problem.make_evaluator(problem.random_solution(seed=9))
    kwargs = {}
    if ranges is not None:
        kwargs = dict(candidate_moves=len(ranges), candidate_ranges=ranges)
    search = TabuSearch(evaluator, tabu_params, seed=5, **kwargs)
    trajectory = []
    for _ in range(iterations):
        result = search.step()
        move_pairs = tuple(result.move.pairs()) if result.move is not None else ()
        trajectory.append(
            (
                result.iteration,
                result.accepted,
                result.was_tabu,
                result.used_aspiration,
                result.cost_after,
                result.best_cost,
                move_pairs,
                evaluator.evaluations,
                _payload_set(search),
            )
        )
    return search, trajectory


def _assert_identical(problem, params_kwargs, *, iterations: int, ranges=None):
    vec_search, vec_traj = _walk(
        problem,
        TabuSearchParams(driver="vectorized", **params_kwargs),
        iterations=iterations,
        ranges=ranges,
    )
    ref_search, ref_traj = _walk(
        problem,
        TabuSearchParams(driver="reference", **params_kwargs),
        iterations=iterations,
        ranges=ranges,
    )
    assert vec_traj == ref_traj
    assert vec_search.best_cost == ref_search.best_cost
    assert np.array_equal(vec_search.best_solution, ref_search.best_solution)
    assert np.array_equal(
        vec_search.evaluator.snapshot(), ref_search.evaluator.snapshot()
    )
    return vec_traj


class TestSerialIdentity:
    def test_default_params_walk_identically(self, problem):
        _assert_identical(
            problem, dict(pairs_per_step=6, move_depth=3), iterations=25
        )

    def test_no_early_accept_full_depth(self, problem):
        _assert_identical(
            problem,
            dict(pairs_per_step=8, move_depth=4, early_accept=False),
            iterations=15,
        )

    def test_multi_candidate_fused_step1(self, problem):
        """Several candidate ranges: the fused step-1 batch must not change
        the walk relative to the reference driver's per-range scoring."""
        ranges = partition_cells(problem.num_cells, 3)
        _assert_identical(
            problem,
            dict(pairs_per_step=5, move_depth=2),
            iterations=15,
            ranges=ranges,
        )

    def test_tabu_heavy_walk_with_aspiration(self, dense_problem):
        """Long tenure on a tiny instance: tabu rejections and aspiration
        overrides actually fire, and the drivers still agree bit-for-bit."""
        trajectory = _assert_identical(
            dense_problem,
            dict(pairs_per_step=3, move_depth=2, tabu_tenure=40, aspiration="best"),
            iterations=40,
        )
        assert any(entry[2] for entry in trajectory), "no tabu hit was exercised"

    def test_tabu_heavy_walk_without_aspiration(self, dense_problem):
        trajectory = _assert_identical(
            dense_problem,
            dict(
                pairs_per_step=2,
                move_depth=1,
                tabu_tenure=80,
                aspiration="none",
                early_accept=False,
            ),
            iterations=80,
        )
        assert any(not entry[1] for entry in trajectory), "no stall was exercised"

    def test_cell_scheme_walks_identically(self, dense_problem):
        from repro.tabu import AttributeScheme

        _assert_identical(
            dense_problem,
            dict(
                pairs_per_step=3,
                move_depth=2,
                tabu_tenure=10,
                attribute_scheme=AttributeScheme.CELL,
            ),
            iterations=25,
        )


class TestRunIdentity:
    def test_run_traces_are_identical(self, problem):
        def run(driver):
            evaluator = problem.make_evaluator(problem.random_solution(seed=9))
            search = TabuSearch(
                evaluator,
                TabuSearchParams(pairs_per_step=4, move_depth=2, driver=driver),
                seed=5,
            )
            return search.run(TerminationCriteria(max_iterations=20))

        vec, ref = run("vectorized"), run("reference")
        assert vec.trace == ref.trace
        assert vec.best_cost == ref.best_cost
        assert vec.evaluations == ref.evaluations
        assert np.array_equal(vec.best_solution, ref.best_solution)


class TestSimulatedParallelIdentity:
    def _params(self, driver: str) -> ParallelSearchParams:
        return ParallelSearchParams(
            num_tsws=2,
            clws_per_tsw=2,
            global_iterations=2,
            tabu=TabuSearchParams(
                local_iterations=4, pairs_per_step=3, move_depth=2, driver=driver
            ),
            seed=77,
        )

    def test_parallel_runs_are_identical(self, problem):
        vec = run_parallel_search(
            problem=problem, params=self._params("vectorized"), backend="simulated"
        )
        ref = run_parallel_search(
            problem=problem, params=self._params("reference"), backend="simulated"
        )
        assert vec.best_cost == ref.best_cost
        assert np.array_equal(vec.best_solution, ref.best_solution)
        assert vec.trace == ref.trace
        assert [r.best_cost_after for r in vec.global_records] == [
            r.best_cost_after for r in ref.global_records
        ]
