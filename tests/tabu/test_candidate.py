"""Unit and property-based tests for cell ranges and candidate-pair sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TabuSearchError
from repro.tabu import (
    CellRange,
    collision_probability,
    full_range,
    partition_cells,
    sample_candidate_pairs,
)


class TestCellRange:
    def test_empty_range_rejected(self):
        with pytest.raises(TabuSearchError):
            CellRange(cells=())

    def test_cells_are_sorted_and_deduplicated(self):
        cell_range = CellRange(cells=(5, 1, 3, 1))
        assert cell_range.cells == (1, 3, 5)
        assert len(cell_range) == 3
        assert 3 in cell_range
        assert 2 not in cell_range

    def test_sample_stays_inside_range(self, rng):
        cell_range = CellRange(cells=(2, 4, 6, 8))
        for _ in range(50):
            assert cell_range.sample(rng) in cell_range

    def test_full_range(self):
        cell_range = full_range(10)
        assert len(cell_range) == 10
        assert cell_range.cells == tuple(range(10))

    def test_full_range_invalid(self):
        with pytest.raises(TabuSearchError):
            full_range(0)


class TestPartitionCells:
    def test_contiguous_partition_covers_everything(self):
        parts = partition_cells(100, 4, scheme="contiguous")
        all_cells = sorted(c for part in parts for c in part.cells)
        assert all_cells == list(range(100))
        assert len(parts) == 4

    def test_strided_partition_covers_everything(self):
        parts = partition_cells(101, 4, scheme="strided")
        all_cells = sorted(c for part in parts for c in part.cells)
        assert all_cells == list(range(101))

    def test_partitions_are_disjoint(self):
        parts = partition_cells(50, 7, scheme="strided")
        seen = set()
        for part in parts:
            assert not (seen & set(part.cells))
            seen.update(part.cells)

    def test_partition_sizes_balanced(self):
        parts = partition_cells(100, 3)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_cells_rejected(self):
        with pytest.raises(TabuSearchError):
            partition_cells(3, 5)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(TabuSearchError):
            partition_cells(10, 2, scheme="zigzag")

    @settings(max_examples=60, deadline=None)
    @given(
        num_cells=st.integers(1, 300),
        num_parts=st.integers(1, 12),
        scheme=st.sampled_from(["contiguous", "strided"]),
    )
    def test_partition_is_exact_cover(self, num_cells, num_parts, scheme):
        if num_parts > num_cells:
            with pytest.raises(TabuSearchError):
                partition_cells(num_cells, num_parts, scheme=scheme)
            return
        parts = partition_cells(num_cells, num_parts, scheme=scheme)
        assert len(parts) == num_parts
        assert all(len(p) >= 1 for p in parts)
        combined = sorted(c for part in parts for c in part.cells)
        assert combined == list(range(num_cells))


class TestCandidatePairs:
    def test_first_cell_from_range_second_different(self, rng):
        cell_range = CellRange(cells=(0, 1, 2, 3))
        pairs = sample_candidate_pairs(cell_range, num_cells=20, count=100, rng=rng)
        assert len(pairs) == 100
        for first, second in pairs:
            assert first in cell_range
            assert 0 <= second < 20
            assert first != second

    def test_invalid_count_rejected(self, rng):
        with pytest.raises(TabuSearchError):
            sample_candidate_pairs(full_range(5), num_cells=5, count=0, rng=rng)

    def test_too_few_cells_rejected(self, rng):
        with pytest.raises(TabuSearchError):
            sample_candidate_pairs(full_range(1), num_cells=1, count=1, rng=rng)

    def test_second_cell_covers_whole_space(self, rng):
        cell_range = CellRange(cells=(0,))
        pairs = sample_candidate_pairs(cell_range, num_cells=6, count=400, rng=rng)
        seconds = {second for _, second in pairs}
        assert seconds == {1, 2, 3, 4, 5}


class TestCollisionProbability:
    def test_paper_formula(self):
        # the paper: probability that two CLWs make the same move is 1/(n-1)^2
        assert collision_probability(11) == pytest.approx(1.0 / 100.0)

    def test_decreases_with_circuit_size(self):
        assert collision_probability(1000) < collision_probability(100)

    def test_small_n_rejected(self):
        with pytest.raises(TabuSearchError):
            collision_probability(1)
