"""Unit tests for swap/compound moves and the step-wise builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TabuSearchError
from repro.placement import CostEvaluator, Layout, load_benchmark, random_placement
from repro.tabu import (
    CompoundMove,
    CompoundMoveBuilder,
    SwapMove,
    best_swap_of_candidates,
    build_compound_move,
    full_range,
)


@pytest.fixture()
def evaluator():
    layout = Layout(load_benchmark("mini64"))
    return CostEvaluator(random_placement(layout, seed=13))


class TestSwapMove:
    def test_pair_is_canonical(self):
        assert SwapMove(cell_a=7, cell_b=3, cost_after=0.5).pair == (3, 7)
        assert SwapMove(cell_a=3, cell_b=7, cost_after=0.5).pair == (3, 7)


class TestCompoundMoveProperties:
    def test_gain_and_improving(self):
        move = CompoundMove(
            swaps=[SwapMove(0, 1, 0.4)], cost_before=0.5, cost_after=0.4, trials=5
        )
        assert move.gain == pytest.approx(0.1)
        assert move.is_improving
        assert move.depth == 1
        assert move.pairs() == [(0, 1)]

    def test_non_improving(self):
        move = CompoundMove(swaps=[], cost_before=0.5, cost_after=0.6)
        assert not move.is_improving
        assert move.gain == pytest.approx(-0.1)


class TestBestSwapOfCandidates:
    def test_selects_minimum_cost(self, evaluator):
        pairs = [(0, 1), (2, 3), (4, 5), (6, 7)]
        best = best_swap_of_candidates(evaluator, pairs)
        costs = [evaluator.evaluate_swap(a, b) for a, b in pairs]
        assert best is not None
        assert best.cost_after == pytest.approx(min(costs))

    def test_empty_candidates(self, evaluator):
        assert best_swap_of_candidates(evaluator, []) is None


class TestBuildCompoundMove:
    def test_invalid_parameters_rejected(self, evaluator, rng):
        with pytest.raises(TabuSearchError):
            build_compound_move(evaluator, full_range(64), pairs_per_step=0, depth=3, rng=rng)
        with pytest.raises(TabuSearchError):
            build_compound_move(evaluator, full_range(64), pairs_per_step=3, depth=0, rng=rng)

    def test_cost_after_matches_evaluator_state(self, evaluator, rng):
        move = build_compound_move(
            evaluator, full_range(64), pairs_per_step=4, depth=3, rng=rng
        )
        assert move.cost_after == pytest.approx(evaluator.cost())
        evaluator.verify_consistency()

    def test_move_is_never_empty(self, evaluator, rng):
        # tabu search relies on accepting (possibly degrading) moves
        for _ in range(5):
            move = build_compound_move(
                evaluator, full_range(64), pairs_per_step=3, depth=2, rng=rng
            )
            assert move.depth >= 1

    def test_respects_depth_limit(self, evaluator, rng):
        move = build_compound_move(
            evaluator, full_range(64), pairs_per_step=3, depth=4, rng=rng, early_accept=False
        )
        assert move.depth <= 4
        assert move.trials <= 4 * 3

    def test_best_prefix_is_best_seen(self, evaluator, rng):
        # without early accept the final cost must be the minimum over all
        # prefixes explored, which is <= the cost of the full-depth sequence
        start_cost = evaluator.cost()
        move = build_compound_move(
            evaluator, full_range(64), pairs_per_step=5, depth=5, rng=rng, early_accept=False
        )
        assert move.cost_after <= start_cost or move.depth >= 1

    def test_early_accept_stops_on_improvement(self, evaluator, rng):
        move = build_compound_move(
            evaluator, full_range(64), pairs_per_step=8, depth=5, rng=rng, early_accept=True
        )
        if move.truncated_early:
            assert move.is_improving
            assert move.depth <= 5


class TestCompoundMoveBuilder:
    def test_step_by_step_matches_semantics(self, evaluator, rng):
        builder = CompoundMoveBuilder(
            evaluator, full_range(64), pairs_per_step=4, depth=3, early_accept=False
        )
        steps = 0
        while builder.wants_more_steps():
            trials = builder.step(rng)
            assert trials == 4
            steps += 1
        assert steps == 3
        move = builder.finalize()
        assert move.trials == 12
        assert move.cost_after == pytest.approx(evaluator.cost())

    def test_finalize_twice_rejected(self, evaluator, rng):
        builder = CompoundMoveBuilder(evaluator, full_range(64), pairs_per_step=2, depth=1)
        builder.step(rng)
        builder.finalize()
        with pytest.raises(TabuSearchError):
            builder.finalize()

    def test_step_after_finalize_rejected(self, evaluator, rng):
        builder = CompoundMoveBuilder(evaluator, full_range(64), pairs_per_step=2, depth=2)
        builder.step(rng)
        builder.finalize()
        with pytest.raises(TabuSearchError):
            builder.step(rng)

    def test_interrupted_builder_returns_partial_move(self, evaluator, rng):
        builder = CompoundMoveBuilder(
            evaluator, full_range(64), pairs_per_step=3, depth=10, early_accept=False
        )
        builder.step(rng)
        builder.step(rng)
        move = builder.finalize()  # interrupted after 2 of 10 steps
        assert 1 <= move.depth <= 2
        assert move.trials == 6

    def test_cost_before_recorded(self, evaluator, rng):
        start = evaluator.cost()
        builder = CompoundMoveBuilder(evaluator, full_range(64), pairs_per_step=2, depth=1)
        builder.step(rng)
        move = builder.finalize()
        assert move.cost_before == pytest.approx(start)
