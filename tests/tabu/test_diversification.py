"""Unit tests for the Kelly-style diversification step."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TabuSearchError
from repro.placement import CostEvaluator, Layout, load_benchmark, random_placement
from repro.tabu import CellRange, FrequencyMemory, diversify, full_range, partition_cells


@pytest.fixture()
def evaluator():
    layout = Layout(load_benchmark("mini64"))
    return CostEvaluator(random_placement(layout, seed=17))


class TestDiversify:
    def test_zero_depth_is_noop(self, evaluator, rng):
        before = evaluator.placement.assignment_tuple()
        result = diversify(evaluator, full_range(64), depth=0, rng=rng)
        assert result.depth == 0
        assert evaluator.placement.assignment_tuple() == before

    def test_depth_swaps_performed(self, evaluator, rng):
        result = diversify(evaluator, full_range(64), depth=5, rng=rng)
        assert result.depth == 5
        assert len(result.swaps) == 5
        evaluator.verify_consistency()

    def test_moves_cells_from_the_given_range(self, evaluator, rng):
        cell_range = CellRange(cells=tuple(range(10)))
        result = diversify(evaluator, cell_range, depth=6, rng=rng)
        for first, _ in result.swaps:
            assert first in cell_range

    def test_changes_solution(self, evaluator, rng):
        before = evaluator.placement.assignment_tuple()
        diversify(evaluator, full_range(64), depth=4, rng=rng)
        assert evaluator.placement.assignment_tuple() != before

    def test_invalid_depth_rejected(self, evaluator, rng):
        with pytest.raises(TabuSearchError):
            diversify(evaluator, full_range(64), depth=-1, rng=rng)

    def test_invalid_partner_sample_rejected(self, evaluator, rng):
        with pytest.raises(TabuSearchError):
            diversify(evaluator, full_range(64), depth=1, rng=rng, partner_sample=0)

    def test_frequency_memory_guides_and_is_updated(self, evaluator, rng):
        memory = FrequencyMemory(64)
        # pre-load the memory so cells 0..4 look heavily used
        for cell in range(5):
            for _ in range(10):
                memory.record_swap(cell, cell)
        cell_range = CellRange(cells=tuple(range(10)))
        result = diversify(
            evaluator, cell_range, depth=4, rng=rng, frequency=memory, partner_sample=4
        )
        # the selected first cells should avoid the heavily used 0..4
        firsts = [first for first, _ in result.swaps]
        assert all(first >= 5 for first in firsts)
        assert memory.counts.sum() > 100  # updated by the performed swaps

    def test_different_ranges_give_different_perturbations(self):
        layout = Layout(load_benchmark("mini64"))
        base = random_placement(layout, seed=3)
        ranges = partition_cells(64, 4)
        outcomes = []
        for index, cell_range in enumerate(ranges):
            evaluator = CostEvaluator(base.copy())
            diversify(
                evaluator, cell_range, depth=4, rng=np.random.default_rng(99)
            )
            outcomes.append(evaluator.placement.assignment_tuple())
        # all four diversified solutions differ pairwise — the TSWs start in
        # different regions of the search space
        assert len(set(outcomes)) == len(outcomes)
